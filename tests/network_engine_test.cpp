// Multi-source LinkEngine regression suite.
//
// The engine streams each co-channel aggressor as a lazily-advanced
// thinned-Poisson hazard state and k-way-merges the candidates, where
// the reference pipeline materialises, sorts and per-photon-thins the
// leaked photons. The two consume RNG draws completely differently, so
// agreement is pinned statistically: pooled two-proportion z-tests
// (tests/support/stat_assert.hpp) on erasure / symbol-error /
// noise-capture / bit-error rates, for each interference-bearing
// consumer path (raw interference, WDM, bus contention) at >= 3
// configurations each. Golden bit-for-bit checks cover what MUST be
// exact: an empty aggressor set degenerating to the single-source
// engine, and determinism across identical seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/stat_assert.hpp"

#include "oci/bus/vertical_bus.hpp"
#include "oci/link/link_engine.hpp"
#include "oci/link/symbol_delivery.hpp"
#include "oci/link/wdm_link.hpp"
#include "oci/net/stack_network.hpp"

namespace {

using namespace oci;
using link::EngineScratch;
using link::LinkEngine;
using link::LinkRunStats;
using link::OpticalLink;
using link::OpticalLinkConfig;
using link::SourcePulse;
using photonics::PhotonArrival;
using util::Frequency;
using util::Power;
using util::RngStream;
using util::Time;

constexpr double kAlpha = 1e-4;

// ---------- shared helpers ----------

void expect_identical(const LinkRunStats& a, const LinkRunStats& b) {
  EXPECT_EQ(a.symbols_sent, b.symbols_sent);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.erasures, b.erasures);
  EXPECT_EQ(a.noise_captures, b.noise_captures);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.total_bits, b.total_bits);
}

void expect_consistent(const LinkRunStats& ref, const LinkRunStats& eng) {
  ASSERT_GT(ref.symbols_sent, 0u);
  ASSERT_EQ(ref.symbols_sent, eng.symbols_sent);
  const std::uint64_t n = ref.symbols_sent;
  EXPECT_RATES_CONSISTENT(ref.erasures, n, eng.erasures, n, kAlpha);
  EXPECT_RATES_CONSISTENT(ref.symbol_errors, n, eng.symbol_errors, n, kAlpha);
  EXPECT_RATES_CONSISTENT(ref.noise_captures, n, eng.noise_captures, n, kAlpha);
  EXPECT_RATES_CONSISTENT(ref.bit_errors, ref.total_bits, eng.bit_errors, eng.total_bits,
                          kAlpha);
}

// ---------- interference path: engine vs reference oracle ----------

struct InterferenceCase {
  OpticalLinkConfig cfg;
  std::vector<double> aggressor_means;      ///< leaked photons per pulse
  std::vector<double> aggressor_fractions;  ///< pulse start, fraction of window
  std::uint64_t symbols = 0;
};

InterferenceCase interference_case(int id) {
  InterferenceCase c;
  c.cfg.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.cfg.bits_per_symbol = 5;
  c.cfg.channel_transmittance = 0.5;
  c.cfg.led.peak_power = Power::microwatts(50.0);
  c.cfg.spad.dcr_at_ref = Frequency::hertz(100.0);
  c.cfg.calibrate = false;
  switch (id) {
    case 0:  // bright link, two moderate aggressors
      c.aggressor_means = {8.0, 5.0};
      c.aggressor_fractions = {0.2, 0.7};
      c.symbols = 3000;
      break;
    case 1:  // photon-starved and noisy, four weak aggressors
      c.cfg.led.peak_power = Power::nanowatts(300.0);
      c.cfg.spad.dcr_at_ref = Frequency::kilohertz(200.0);
      c.cfg.background_rate = Frequency::megahertz(2.0);
      c.aggressor_means = {2.0, 1.0, 0.5, 2.5};
      c.aggressor_fractions = {0.1, 0.35, 0.6, 0.85};
      c.symbols = 3000;
      break;
    default:  // passive quench, one strong early aggressor
      c.cfg.spad.quench = spad::QuenchMode::kPassive;
      c.cfg.spad.afterpulse_probability = 0.05;
      c.aggressor_means = {20.0};
      c.aggressor_fractions = {0.15};
      c.symbols = 2500;
      break;
  }
  return c;
}

std::vector<SourcePulse> aggressors_for(const InterferenceCase& c, const OpticalLink& link,
                                        Time window_start) {
  std::vector<SourcePulse> out;
  const Time window = link.toa_window();
  for (std::size_t k = 0; k < c.aggressor_means.size(); ++k) {
    out.push_back(SourcePulse{&link.led(), c.aggressor_means[k],
                              window_start + window * c.aggressor_fractions[k]});
  }
  return out;
}

LinkRunStats run_interference_engine(const InterferenceCase& c, const OpticalLink& link,
                                     RngStream& rng) {
  const LinkEngine engine(link);
  EngineScratch scratch;
  LinkRunStats stats;
  Time t = Time::zero();
  Time dead_until = Time::zero();
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  for (std::uint64_t i = 0; i < c.symbols; ++i) {
    const auto symbol = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_symbol)));
    const std::vector<SourcePulse> aggressors = aggressors_for(c, link, t);
    (void)engine.transmit_symbol(symbol, t, aggressors, dead_until, stats, rng, scratch);
    t += link.symbol_period();
  }
  return stats;
}

LinkRunStats run_interference_reference(const InterferenceCase& c, const OpticalLink& link,
                                        RngStream& rng) {
  LinkRunStats stats;
  Time t = Time::zero();
  Time dead_until = Time::zero();
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  for (std::uint64_t i = 0; i < c.symbols; ++i) {
    const auto symbol = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_symbol)));
    // Materialise each aggressor pulse the pre-engine way.
    std::vector<PhotonArrival> interference;
    for (const SourcePulse& a : aggressors_for(c, link, t)) {
      const auto n = rng.poisson(a.mean_photons);
      for (std::int64_t p = 0; p < n; ++p) {
        const Time offset = link.led().sample_emission_time(rng.uniform());
        interference.push_back(PhotonArrival{a.start + offset, /*is_signal=*/false});
      }
    }
    std::sort(interference.begin(), interference.end(),
              [](const PhotonArrival& x, const PhotonArrival& y) { return x.time < y.time; });
    (void)link.transmit_symbol_reference(symbol, t, dead_until, stats, rng,
                                         std::move(interference));
    t += link.symbol_period();
  }
  return stats;
}

class InterferenceEngineVsReference : public ::testing::TestWithParam<int> {};

TEST_P(InterferenceEngineVsReference, RatesConsistent) {
  const InterferenceCase c = interference_case(GetParam());
  RngStream process(1013);
  const OpticalLink link(c.cfg, process);

  RngStream tx_ref(1019);
  const LinkRunStats ref = run_interference_reference(c, link, tx_ref);
  RngStream tx_eng(1021);
  const LinkRunStats eng = run_interference_engine(c, link, tx_eng);

  expect_consistent(ref, eng);
}

INSTANTIATE_TEST_SUITE_P(Configs, InterferenceEngineVsReference,
                         ::testing::Values(0, 1, 2));

TEST(MultiSourceEngine, EmptyAggressorSetMatchesSingleSourceBitForBit) {
  const InterferenceCase c = interference_case(0);
  RngStream process(1031);
  const OpticalLink link(c.cfg, process);
  const LinkEngine engine(link);

  LinkRunStats single, multi;
  EngineScratch scratch;
  RngStream tx_a(1033), tx_b(1033);
  Time dead_a = Time::zero(), dead_b = Time::zero();
  Time t = Time::zero();
  for (int i = 0; i < 400; ++i) {
    const auto symbol = static_cast<std::uint64_t>(i % 32);
    const std::uint64_t da =
        engine.transmit_symbol(symbol, t, dead_a, single, tx_a);
    const std::uint64_t db = engine.transmit_symbol(symbol, t, std::span<const SourcePulse>{},
                                                    dead_b, multi, tx_b, scratch);
    EXPECT_EQ(da, db);
    t += link.symbol_period();
  }
  expect_identical(single, multi);
  EXPECT_EQ(dead_a.seconds(), dead_b.seconds());
}

TEST(MultiSourceEngine, StrongAggressorsRaiseNoiseCaptures) {
  InterferenceCase clean = interference_case(0);
  clean.aggressor_means = {};
  clean.aggressor_fractions = {};
  clean.symbols = 2000;
  InterferenceCase loud = interference_case(0);
  loud.aggressor_means = {25.0, 25.0, 25.0};
  loud.aggressor_fractions = {0.2, 0.5, 0.8};
  loud.symbols = 2000;

  RngStream process(1039);
  const OpticalLink link(clean.cfg, process);
  RngStream tx_clean(1049);
  const LinkRunStats quiet = run_interference_engine(clean, link, tx_clean);
  RngStream tx_loud(1051);
  const LinkRunStats noisy = run_interference_engine(loud, link, tx_loud);

  EXPECT_RATE_LT(quiet.noise_captures, quiet.symbols_sent, 0.05, 1e-6);
  EXPECT_RATE_GT(noisy.noise_captures, noisy.symbols_sent, 0.10, 1e-6);
}

// ---------- WDM path: engine vs reference oracle ----------

link::WdmLinkConfig wdm_case(int id) {
  link::WdmLinkConfig c;
  c.base.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.base.bits_per_symbol = 6;
  c.base.led.peak_power = Power::microwatts(2.0);
  c.base.spad.jitter_sigma = Time::picoseconds(40.0);
  c.base.spad.dcr_at_ref = Frequency::hertz(350.0);
  c.base.calibrate = false;
  c.path_transmittance = 0.3;
  switch (id) {
    case 0:  // two channels, stock isolation
      c.grid.channels = 2;
      break;
    case 1:  // four channels, leaky demux: crosstalk-dominated
      c.grid.channels = 4;
      c.filter.adjacent_isolation_db = 15.0;
      c.filter.isolation_floor_db = 35.0;
      break;
    default:  // four channels, tight grid at stock isolation
      c.grid.channels = 4;
      c.grid.spacing = util::Wavelength::nanometres(15.0);
      break;
  }
  return c;
}

LinkRunStats sum_channels(const link::WdmLink::RunResult& run) {
  LinkRunStats total;
  for (const auto& chan : run.per_channel) total += chan.stats;
  return total;
}

class WdmEngineVsReference : public ::testing::TestWithParam<int> {};

TEST_P(WdmEngineVsReference, RatesConsistent) {
  const link::WdmLinkConfig cfg = wdm_case(GetParam());
  RngStream process(1061);
  const link::WdmLink wdm(cfg, process);

  constexpr std::uint64_t kSymbolsPerChannel = 500;
  RngStream tx_ref(1063);
  const LinkRunStats ref = sum_channels(wdm.measure_reference(kSymbolsPerChannel, tx_ref));
  RngStream tx_eng(1069);
  const LinkRunStats eng = sum_channels(wdm.measure(kSymbolsPerChannel, tx_eng));

  expect_consistent(ref, eng);
}

INSTANTIATE_TEST_SUITE_P(Configs, WdmEngineVsReference, ::testing::Values(0, 1, 2));

TEST(WdmEngine, DeterministicAcrossIdenticalSeeds) {
  const link::WdmLinkConfig cfg = wdm_case(1);
  RngStream p1(1087), p2(1087);
  const link::WdmLink a(cfg, p1), b(cfg, p2);
  RngStream t1(1091), t2(1091);
  const auto ra = a.measure(200, t1);
  const auto rb = b.measure(200, t2);
  ASSERT_EQ(ra.per_channel.size(), rb.per_channel.size());
  for (std::size_t i = 0; i < ra.per_channel.size(); ++i) {
    expect_identical(ra.per_channel[i].stats, rb.per_channel[i].stats);
    EXPECT_EQ(ra.per_channel[i].decoded, rb.per_channel[i].decoded);
  }
}

// ---------- bus contention path: engine vs reference oracle ----------

bus::VerticalBusConfig bus_case(int id) {
  bus::VerticalBusConfig c;
  c.dies = 4;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 5;
  c.led.wavelength = util::Wavelength::nanometres(850.0);
  c.led.peak_power = Power::microwatts(2.0);
  c.spad.dcr_at_ref = Frequency::hertz(350.0);
  switch (id) {
    case 0:  // uncontended slot (aggressor-free sanity)
      break;
    case 1:  // one colliding neighbour
      break;
    default:  // deep stack, two colliders
      c.dies = 6;
      break;
  }
  return c;
}

std::vector<std::size_t> bus_talkers(int id) {
  switch (id) {
    case 0:
      return {1};
    case 1:
      return {1, 2};
    default:
      return {2, 1, 4};
  }
}

/// Mirrors monte_carlo_upstream_contention draw-for-draw on the setup
/// (same fork labels => identical link construction) but runs the
/// windows through the materialised-photon reference pipeline.
LinkRunStats run_contention_reference(const bus::VerticalBus& vbus,
                                      std::span<const std::size_t> talkers,
                                      std::uint64_t symbols, RngStream& rng) {
  const auto& cfg = vbus.config();
  RngStream process = rng.fork("contention-link");
  const OpticalLink link(vbus.receiver_link_config(talkers[0], cfg.master), process);
  const photonics::MicroLed& led = link.led();

  std::vector<double> aggressor_mean;
  for (std::size_t k = 1; k < talkers.size(); ++k) {
    aggressor_mean.push_back(
        led.photons_per_pulse() *
        vbus.stack().transmittance(talkers[k], cfg.master, cfg.led.wavelength));
  }

  LinkRunStats stats;
  RngStream tx = rng.fork("contention-tx");
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  Time t = Time::zero();
  Time dead_until = Time::zero();
  for (std::uint64_t s = 0; s < symbols; ++s) {
    const auto symbol = static_cast<std::uint64_t>(
        tx.uniform_int(0, static_cast<std::int64_t>(max_symbol)));
    std::vector<PhotonArrival> interference;
    for (const double mean : aggressor_mean) {
      const auto colliding = static_cast<std::uint64_t>(
          tx.uniform_int(0, static_cast<std::int64_t>(max_symbol)));
      const Time pulse_start = t + link.ppm().encode(colliding);
      const auto n = tx.poisson(mean);
      for (std::int64_t p = 0; p < n; ++p) {
        const Time offset = led.sample_emission_time(tx.uniform());
        interference.push_back(PhotonArrival{pulse_start + offset, /*is_signal=*/false});
      }
    }
    std::sort(interference.begin(), interference.end(),
              [](const PhotonArrival& x, const PhotonArrival& y) { return x.time < y.time; });
    (void)link.transmit_symbol_reference(symbol, t, dead_until, stats, tx,
                                         std::move(interference));
    t += link.symbol_period();
  }
  return stats;
}

class BusContentionEngineVsReference : public ::testing::TestWithParam<int> {};

TEST_P(BusContentionEngineVsReference, RatesConsistent) {
  const bus::VerticalBus vbus(bus_case(GetParam()));
  const std::vector<std::size_t> talkers = bus_talkers(GetParam());
  constexpr std::uint64_t kSymbols = 1200;

  // Same outer seed => fork("contention-link") builds the identical
  // receiver chain on both sides; only the window simulation differs.
  RngStream rng_ref(1093);
  const LinkRunStats ref = run_contention_reference(vbus, talkers, kSymbols, rng_ref);
  RngStream rng_eng(1093);
  const LinkRunStats eng =
      vbus.monte_carlo_upstream_contention(talkers, kSymbols, rng_eng);

  expect_consistent(ref, eng);
}

INSTANTIATE_TEST_SUITE_P(Configs, BusContentionEngineVsReference,
                         ::testing::Values(0, 1, 2));

TEST(VerticalBusMonteCarlo, BroadcastReachesNearDiesAndIsDeterministic) {
  const bus::VerticalBusConfig cfg = bus_case(0);
  const bus::VerticalBus vbus(cfg);
  RngStream r1(1097), r2(1097);
  const auto a = vbus.monte_carlo_broadcast(400, r1);
  const auto b = vbus.monte_carlo_broadcast(400, r2);

  ASSERT_EQ(a.dies.size(), cfg.dies - 1);
  ASSERT_EQ(a.per_die.size(), a.dies.size());
  for (std::size_t i = 0; i < a.per_die.size(); ++i) {
    expect_identical(a.per_die[i], b.per_die[i]);
    EXPECT_EQ(a.per_die[i].symbols_sent, 400u);
  }
  // The die adjacent to the master sees the healthiest budget: its
  // erasure rate must stay below the far die's (or both are ~0).
  const auto& near = a.per_die.front();
  const auto& far = a.per_die.back();
  EXPECT_LE(near.erasures, far.erasures + 50);
}

TEST(VerticalBusMonteCarlo, RejectsBadTalkers) {
  const bus::VerticalBus vbus(bus_case(0));
  RngStream rng(1103);
  EXPECT_THROW((void)vbus.monte_carlo_upstream_contention({}, 10, rng),
               std::invalid_argument);
  const std::vector<std::size_t> master_talker{0};
  EXPECT_THROW((void)vbus.monte_carlo_upstream_contention(master_talker, 10, rng),
               std::invalid_argument);
  const std::vector<std::size_t> oob{9};
  EXPECT_THROW((void)vbus.monte_carlo_upstream_contention(oob, 10, rng),
               std::invalid_argument);
  const std::vector<std::size_t> duplicated{1, 2, 1};
  EXPECT_THROW((void)vbus.monte_carlo_upstream_contention(duplicated, 10, rng),
               std::invalid_argument);
}

// ---------- NoC coupling: LinkEngine-backed delivery model ----------

OpticalLinkConfig noc_link_config(double jitter_ps) {
  OpticalLinkConfig c;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 5;
  c.channel_transmittance = 0.5;
  c.led.peak_power = Power::microwatts(50.0);
  c.spad.dcr_at_ref = Frequency::hertz(350.0);
  c.spad.jitter_sigma = Time::picoseconds(jitter_ps);
  c.calibrate = false;
  return c;
}

net::StackNetworkConfig noc_config() {
  net::StackNetworkConfig c;
  c.dies = 4;
  c.traffic.resize(c.dies);
  for (auto& t : c.traffic) {
    t.packets_per_slot = 0.1;
    t.uniform_destinations = true;
  }
  return c;
}

TEST(NocCoupling, DeliveryModelOverridesBernoulli) {
  auto cfg = noc_config();
  cfg.delivery_probability = 0.0;  // Bernoulli path would deliver nothing
  cfg.delivery_model = [](const net::Packet&, RngStream&) { return true; };
  net::StackNetwork netw(cfg, std::make_unique<net::TokenMac>(cfg.dies, 0));
  RngStream rng(1109);
  const auto r = netw.run(2000, rng);
  EXPECT_GT(r.total_offered(), 0u);
  EXPECT_EQ(r.total_delivered() + [&] {
    std::uint64_t drops = 0;
    for (const auto& d : r.per_die) drops += d.retry_drops + d.queue_drops;
    return drops;
  }() + netw.backlog(), r.total_offered());
  EXPECT_GT(r.total_delivered(), 0u);
}

TEST(NocCoupling, PhotonLevelDeliveryTracksLinkQuality) {
  RngStream p_good(1117), p_bad(1117);
  const OpticalLink good_link(noc_link_config(40.0), p_good);
  const OpticalLink bad_link(noc_link_config(600.0), p_bad);  // jitter-swamped slots
  link::SymbolDeliveryModel good_phy(good_link);
  link::SymbolDeliveryModel bad_phy(bad_link);

  const auto run_with = [&](link::SymbolDeliveryModel& phy) {
    auto cfg = noc_config();
    cfg.delivery_model = [&phy](const net::Packet& p, RngStream& rng) {
      return phy.deliver(p.payload_bytes, rng);
    };
    net::StackNetwork netw(cfg, std::make_unique<net::TokenMac>(cfg.dies, 0));
    RngStream rng(1123);
    return netw.run(3000, rng);
  };

  const auto good = run_with(good_phy);
  const auto bad = run_with(bad_phy);
  EXPECT_GT(good.delivery_ratio(), 0.8);
  EXPECT_LT(bad.delivery_ratio(), good.delivery_ratio());
  // The phy model exposes photon-level counters the Bernoulli
  // abstraction cannot: the broken link's symbol errors must dwarf the
  // healthy link's.
  EXPECT_GT(bad_phy.cumulative().symbol_errors, good_phy.cumulative().symbol_errors);
  EXPECT_GT(good_phy.cumulative().symbols_sent, 0u);
}

}  // namespace
