// Unit tests for oci::photonics -- silicon optics, LED, die stack,
// photon statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "oci/photonics/die_stack.hpp"
#include "oci/photonics/led.hpp"
#include "oci/photonics/photon_stream.hpp"
#include "oci/photonics/silicon.hpp"
#include "oci/util/statistics.hpp"

namespace {

using namespace oci::photonics;
using oci::util::Energy;
using oci::util::Frequency;
using oci::util::Length;
using oci::util::Power;
using oci::util::RngStream;
using oci::util::RunningStats;
using oci::util::Time;
using oci::util::Wavelength;

// ---------- silicon ----------

TEST(Silicon, AbsorptionDecreasesWithWavelength) {
  double prev = absorption_coefficient_si(Wavelength::nanometres(400.0));
  for (double nm = 450.0; nm <= 1100.0; nm += 50.0) {
    const double a = absorption_coefficient_si(Wavelength::nanometres(nm));
    EXPECT_LT(a, prev) << "at " << nm << " nm";
    prev = a;
  }
}

TEST(Silicon, KnownPenetrationDepths) {
  // 850 nm: alpha ~ 535 /cm -> ~18.7 um penetration.
  EXPECT_NEAR(penetration_depth_si(Wavelength::nanometres(850.0)).micrometres(), 18.7, 1.0);
  // 450 nm: alpha ~ 2.55e4 /cm -> ~0.39 um.
  EXPECT_NEAR(penetration_depth_si(Wavelength::nanometres(450.0)).micrometres(), 0.392, 0.02);
}

TEST(Silicon, TableEndpointsClamp) {
  const double at_350 = absorption_coefficient_si(Wavelength::nanometres(350.0));
  EXPECT_NEAR(absorption_coefficient_si(Wavelength::nanometres(200.0)), at_350,
              at_350 * 1e-9);
  const double at_1100 = absorption_coefficient_si(Wavelength::nanometres(1100.0));
  EXPECT_NEAR(absorption_coefficient_si(Wavelength::nanometres(1500.0)), at_1100,
              at_1100 * 1e-9);
}

TEST(Silicon, BeerLambertComposition) {
  // T(d1 + d2) == T(d1) * T(d2): absorption composes multiplicatively.
  const Wavelength wl = Wavelength::nanometres(850.0);
  const double t1 = transmittance_si(wl, Length::micrometres(30.0));
  const double t2 = transmittance_si(wl, Length::micrometres(20.0));
  const double t12 = transmittance_si(wl, Length::micrometres(50.0));
  EXPECT_NEAR(t12, t1 * t2, 1e-12);
}

TEST(Silicon, TransmittanceBounds) {
  const Wavelength wl = Wavelength::nanometres(650.0);
  EXPECT_DOUBLE_EQ(transmittance_si(wl, Length::metres(0.0)), 1.0);
  const double t = transmittance_si(wl, Length::micrometres(100.0));
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
}

TEST(Silicon, RefractiveIndexReasonable) {
  const double n = refractive_index_si(Wavelength::nanometres(850.0));
  EXPECT_GT(n, 3.3);
  EXPECT_LT(n, 4.5);
  // Dispersion: higher index at shorter wavelength.
  EXPECT_GT(refractive_index_si(Wavelength::nanometres(450.0)), n);
}

TEST(Silicon, FresnelReflectanceSiAir) {
  // n ~ 3.6 -> R ~ 32%.
  const double r = fresnel_reflectance_si_air(Wavelength::nanometres(850.0));
  EXPECT_GT(r, 0.25);
  EXPECT_LT(r, 0.40);
}

// ---------- LED ----------

MicroLedParams default_led() {
  MicroLedParams p;
  p.peak_power = Power::microwatts(50.0);
  p.pulse_width = Time::picoseconds(300.0);
  return p;
}

TEST(MicroLed, PulseEnergyIsPeakTimesWidth) {
  const MicroLed led(default_led());
  EXPECT_NEAR(led.optical_pulse_energy().femtojoules(), 50e-6 * 300e-12 * 1e15, 1e-6);
}

TEST(MicroLed, ElectricalEnergyIncludesDriverAndWallPlug) {
  MicroLedParams p = default_led();
  p.wall_plug_efficiency = 0.05;
  const MicroLed led(p);
  const double emission_j = led.optical_pulse_energy().joules() / 0.05;
  const double driver_j = p.driver_load.farads() * p.supply.volts() * p.supply.volts();
  EXPECT_NEAR(led.electrical_pulse_energy().joules(), emission_j + driver_j, 1e-18);
}

TEST(MicroLed, PhotonsPerPulseMatchesPlanck) {
  const MicroLed led(default_led());
  const double e_photon = 6.62607015e-34 * 2.99792458e8 / 450e-9;
  EXPECT_NEAR(led.photons_per_pulse(),
              led.optical_pulse_energy().joules() / e_photon, 1.0);
  EXPECT_GT(led.photons_per_pulse(), 1e4);
}

TEST(MicroLed, RejectsBadParams) {
  MicroLedParams p = default_led();
  p.pulse_width = Time::zero();
  EXPECT_THROW(MicroLed{p}, std::invalid_argument);
  p = default_led();
  p.wall_plug_efficiency = 0.0;
  EXPECT_THROW(MicroLed{p}, std::invalid_argument);
  p = default_led();
  p.wall_plug_efficiency = 1.5;
  EXPECT_THROW(MicroLed{p}, std::invalid_argument);
}

TEST(MicroLed, RectangularEnvelope) {
  const MicroLed led(default_led());
  EXPECT_DOUBLE_EQ(led.envelope(Time::picoseconds(-1.0)), 0.0);
  EXPECT_DOUBLE_EQ(led.envelope(Time::picoseconds(150.0)), 1.0);
  EXPECT_DOUBLE_EQ(led.envelope(Time::picoseconds(301.0)), 0.0);
}

TEST(MicroLed, RectangularSamplingUniform) {
  const MicroLed led(default_led());
  EXPECT_DOUBLE_EQ(led.sample_emission_time(0.0).picoseconds(), 0.0);
  EXPECT_NEAR(led.sample_emission_time(0.5).picoseconds(), 150.0, 1e-9);
}

TEST(MicroLed, ExponentialSamplingMean) {
  MicroLedParams p = default_led();
  p.shape = PulseShape::kExponential;
  const MicroLed led(p);
  RngStream rng(101);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(led.sample_emission_time(rng.uniform()).picoseconds());
  }
  EXPECT_NEAR(s.mean(), 300.0, 6.0);  // mean of Exp(width)
}

TEST(MicroLed, GaussianSamplingCentred) {
  MicroLedParams p = default_led();
  p.shape = PulseShape::kGaussian;
  const MicroLed led(p);
  RngStream rng(103);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(led.sample_emission_time(rng.uniform()).picoseconds());
  }
  EXPECT_NEAR(s.mean(), 150.0, 2.0);       // centred at width/2
  EXPECT_NEAR(s.stddev(), 50.0, 2.0);      // sigma = width/6
}

// ---------- die stack ----------

DieSpec thin_die() {
  DieSpec d;
  d.thickness = Length::micrometres(50.0);
  d.interface_coupling = 0.85;
  return d;
}

TEST(DieStack, SelfTransmittanceIsUnity) {
  const DieStack stack = DieStack::uniform(4, thin_die());
  EXPECT_DOUBLE_EQ(stack.transmittance(2, 2, Wavelength::nanometres(850.0)), 1.0);
}

TEST(DieStack, SymmetricUpDown) {
  const DieStack stack = DieStack::uniform(6, thin_die());
  const Wavelength wl = Wavelength::nanometres(850.0);
  EXPECT_DOUBLE_EQ(stack.transmittance(0, 4, wl), stack.transmittance(4, 0, wl));
}

TEST(DieStack, SiliconPathExcludesEndpointDies) {
  const DieStack stack = DieStack::uniform(5, thin_die());
  // Adjacent dies: no bulk silicon between them.
  EXPECT_DOUBLE_EQ(stack.silicon_path(0, 1).micrometres(), 0.0);
  // Two dies apart: one intermediate die's thickness.
  EXPECT_DOUBLE_EQ(stack.silicon_path(0, 2).micrometres(), 50.0);
  EXPECT_DOUBLE_EQ(stack.silicon_path(0, 4).micrometres(), 150.0);
}

TEST(DieStack, InterfacesCrossed) {
  const DieStack stack = DieStack::uniform(5, thin_die());
  EXPECT_EQ(stack.interfaces_crossed(0, 1), 1u);
  EXPECT_EQ(stack.interfaces_crossed(4, 1), 3u);
  EXPECT_EQ(stack.interfaces_crossed(2, 2), 0u);
}

TEST(DieStack, TransmittanceDecaysWithDistance) {
  const DieStack stack = DieStack::uniform(8, thin_die());
  const Wavelength wl = Wavelength::nanometres(850.0);
  double prev = 1.0;
  for (std::size_t to = 1; to < 8; ++to) {
    const double t = stack.transmittance(0, to, wl);
    EXPECT_LT(t, prev) << "to die " << to;
    prev = t;
  }
}

TEST(DieStack, AdjacentDieIsCouplingOnly) {
  const DieStack stack = DieStack::uniform(3, thin_die());
  EXPECT_NEAR(stack.transmittance(0, 1, Wavelength::nanometres(850.0)), 0.85, 1e-12);
}

TEST(DieStack, RedderLightReachesFarther) {
  const DieStack stack = DieStack::uniform(8, thin_die());
  EXPECT_GT(stack.transmittance(0, 4, Wavelength::nanometres(1050.0)),
            stack.transmittance(0, 4, Wavelength::nanometres(650.0)));
}

TEST(DieStack, MaxReach) {
  const DieStack stack = DieStack::uniform(16, thin_die());
  const std::size_t reach_ir = stack.max_reach(Wavelength::nanometres(1050.0), 1e-3);
  const std::size_t reach_blue = stack.max_reach(Wavelength::nanometres(450.0), 1e-3);
  EXPECT_GT(reach_ir, reach_blue);
}

TEST(DieStack, RejectsBadSpecs) {
  DieSpec bad = thin_die();
  bad.thickness = Length::metres(0.0);
  EXPECT_THROW(DieStack::uniform(2, bad), std::invalid_argument);
  bad = thin_die();
  bad.interface_coupling = 0.0;
  EXPECT_THROW(DieStack::uniform(2, bad), std::invalid_argument);
  bad.interface_coupling = 1.2;
  EXPECT_THROW(DieStack::uniform(2, bad), std::invalid_argument);
  EXPECT_THROW(DieStack({}), std::invalid_argument);
}

TEST(DieStack, IndexOutOfRangeThrows) {
  const DieStack stack = DieStack::uniform(3, thin_die());
  EXPECT_THROW((void)stack.transmittance(0, 5, Wavelength::nanometres(850.0)), std::out_of_range);
  EXPECT_THROW((void)stack.silicon_path(5, 0), std::out_of_range);
}

TEST(Crosstalk, DecaysWithPitch) {
  CrosstalkModel x;
  EXPECT_DOUBLE_EQ(x.fraction_at(Length::metres(0.0)), 1.0);
  EXPECT_GT(x.neighbour_fraction(), 0.0);
  EXPECT_LT(x.neighbour_fraction(), 0.05);  // 100 um pitch, 25 um decay
  EXPECT_LT(x.fraction_at(Length::micrometres(200.0)), x.neighbour_fraction());
}

// ---------- photon stream ----------

TEST(PhotonStream, MeanPhotonsScalesWithTransmittance) {
  const MicroLed led(default_led());
  const PhotonStream full(led, 1.0);
  const PhotonStream half(led, 0.5);
  EXPECT_NEAR(half.mean_photons_per_pulse() / full.mean_photons_per_pulse(), 0.5, 1e-12);
  EXPECT_THROW(PhotonStream(led, 1.5), std::invalid_argument);
  EXPECT_THROW(PhotonStream(led, -0.1), std::invalid_argument);
  EXPECT_THROW(PhotonStream(led, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(PhotonStream, PulseSamplesInsideEnvelopeAndSorted) {
  MicroLedParams p = default_led();
  p.peak_power = Power::nanowatts(500.0);  // keep the count small
  const MicroLed led(p);
  const PhotonStream stream(led, 1.0);
  RngStream rng(211);
  const Time start = Time::nanoseconds(100.0);
  const auto photons = stream.sample_pulse(start, rng);
  for (std::size_t i = 0; i < photons.size(); ++i) {
    EXPECT_GE(photons[i].time.seconds(), start.seconds());
    EXPECT_LE(photons[i].time.seconds(), (start + p.pulse_width).seconds() + 1e-15);
    EXPECT_TRUE(photons[i].is_signal);
    if (i > 0) { EXPECT_GE(photons[i].time.seconds(), photons[i - 1].time.seconds()); }
  }
}

TEST(PhotonStream, PoissonCountStatistics) {
  MicroLedParams p = default_led();
  p.peak_power = Power::nanowatts(100.0);
  const MicroLed led(p);
  const PhotonStream stream(led, 1.0);
  const double mu = stream.mean_photons_per_pulse();
  RngStream rng(223);
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    s.add(static_cast<double>(stream.sample_pulse(Time::zero(), rng).size()));
  }
  EXPECT_NEAR(s.mean(), mu, 0.1 * mu + 0.1);
  // Poisson: variance ~ mean.
  EXPECT_NEAR(s.variance(), mu, 0.2 * mu + 0.2);
}

TEST(PhotonStream, BackgroundRate) {
  RngStream rng(227);
  RunningStats s;
  const Frequency rate = Frequency::megahertz(10.0);
  const Time window = Time::microseconds(10.0);
  for (int i = 0; i < 500; ++i) {
    const auto bg = PhotonStream::sample_background(rate, Time::zero(), window, rng);
    s.add(static_cast<double>(bg.size()));
    for (const auto& ph : bg) EXPECT_FALSE(ph.is_signal);
  }
  EXPECT_NEAR(s.mean(), 100.0, 2.0);  // 10 MHz x 10 us
}

TEST(PhotonStream, BackgroundZeroRateEmpty) {
  RngStream rng(229);
  EXPECT_TRUE(PhotonStream::sample_background(Frequency::hertz(0.0), Time::zero(),
                                              Time::microseconds(1.0), rng)
                  .empty());
}

TEST(PhotonStream, MergeKeepsOrder) {
  std::vector<PhotonArrival> a{{Time::nanoseconds(1.0), true}, {Time::nanoseconds(5.0), true}};
  std::vector<PhotonArrival> b{{Time::nanoseconds(3.0), false}};
  const auto merged = PhotonStream::merge(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[0].time.nanoseconds(), 1.0);
  EXPECT_DOUBLE_EQ(merged[1].time.nanoseconds(), 3.0);
  EXPECT_FALSE(merged[1].is_signal);
  EXPECT_DOUBLE_EQ(merged[2].time.nanoseconds(), 5.0);
}

TEST(PhotonStream, MergeStealsBufferWhenOneSideEmpty) {
  std::vector<PhotonArrival> a{{Time::nanoseconds(1.0), true}, {Time::nanoseconds(2.0), true}};
  a.reserve(64);
  const PhotonArrival* data = a.data();
  // Non-empty side moves through untouched: same buffer, no copy.
  auto merged = PhotonStream::merge(std::move(a), {});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.data(), data);
  const PhotonArrival* data2 = merged.data();
  auto merged2 = PhotonStream::merge({}, std::move(merged));
  ASSERT_EQ(merged2.size(), 2u);
  EXPECT_EQ(merged2.data(), data2);
}

TEST(PhotonStream, MergeBackwardInPlaceMatchesStdMerge) {
  // Adversarial interleavings, including ties and one side exhausting
  // first, must reproduce std::merge exactly (a-before-b on ties).
  RngStream rng(233);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PhotonArrival> a, b;
    const int na = static_cast<int>(rng.uniform_int(0, 12));
    const int nb = static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < na; ++i) {
      a.push_back({Time::nanoseconds(rng.uniform_int(0, 5) * 1.0), true});
    }
    for (int i = 0; i < nb; ++i) {
      b.push_back({Time::nanoseconds(rng.uniform_int(0, 5) * 1.0), false});
    }
    const auto by_time = [](const PhotonArrival& x, const PhotonArrival& y) {
      return x.time < y.time;
    };
    std::sort(a.begin(), a.end(), by_time);
    std::sort(b.begin(), b.end(), by_time);
    std::vector<PhotonArrival> expected(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin(), by_time);

    const auto merged = PhotonStream::merge(a, b);
    ASSERT_EQ(merged.size(), expected.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_DOUBLE_EQ(merged[i].time.seconds(), expected[i].time.seconds());
      EXPECT_EQ(merged[i].is_signal, expected[i].is_signal);
    }
  }
}

}  // namespace
