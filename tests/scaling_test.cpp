// Tests for the CMOS technology-node scaling model.
#include <gtest/gtest.h>

#include "oci/electrical/scaling.hpp"

using namespace oci;
using electrical::TechnologyNode;
using util::Capacitance;
using util::Time;

TEST(Scaling, LadderIsOrderedCoarsestFirst) {
  const auto& ladder = electrical::technology_ladder();
  ASSERT_GE(ladder.size(), 5u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder[i].feature_nm, ladder[i - 1].feature_nm);
    EXPECT_LE(ladder[i].supply.volts(), ladder[i - 1].supply.volts());
    EXPECT_LT(ladder[i].fo4_delay, ladder[i - 1].fo4_delay);
    EXPECT_LT(ladder[i].delay_element, ladder[i - 1].delay_element);
    // The cost of scaling: relative mismatch grows.
    EXPECT_GE(ladder[i].mismatch_sigma, ladder[i - 1].mismatch_sigma);
    // Pad capacitance shrinks, but much slower than feature size.
    EXPECT_LT(ladder[i].pad_capacitance.farads(), ladder[i - 1].pad_capacitance.farads());
  }
}

TEST(Scaling, PadCapacitanceScalesSlowerThanDriverLoad) {
  const auto& ladder = electrical::technology_ladder();
  const auto& first = ladder.front();
  const auto& last = ladder.back();
  const double pad_shrink = first.pad_capacitance.farads() / last.pad_capacitance.farads();
  const double driver_shrink =
      first.led_driver_load.farads() / last.led_driver_load.farads();
  EXPECT_GT(driver_shrink, 2.0 * pad_shrink);
}

TEST(Scaling, DelayElementIsAFewFo4) {
  for (const TechnologyNode& node : electrical::technology_ladder()) {
    const double ratio = node.delay_element.seconds() / node.fo4_delay.seconds();
    EXPECT_GT(ratio, 1.5) << node.name;
    EXPECT_LT(ratio, 4.0) << node.name;
  }
}

TEST(Scaling, NodeByNameFindsAndThrows) {
  EXPECT_EQ(electrical::node_by_name("90nm").feature_nm, 90.0);
  EXPECT_EQ(electrical::node_by_name("32nm").feature_nm, 32.0);
  EXPECT_THROW((void)electrical::node_by_name("7nm"), std::invalid_argument);
}

TEST(Scaling, SwitchingEnergyIsCV2) {
  const TechnologyNode& node = electrical::node_by_name("90nm");
  const auto e = electrical::switching_energy_at(node, Capacitance::femtofarads(100.0));
  EXPECT_NEAR(e.joules(), 100e-15 * 1.2 * 1.2, 1e-18);
}

TEST(Scaling, BitsPerSampleGrowDownTheLadder) {
  const Time fine_range = Time::nanoseconds(5.0);
  unsigned prev = 0;
  for (const TechnologyNode& node : electrical::technology_ladder()) {
    const unsigned bits = electrical::bits_per_sample_at(node, fine_range, 3);
    EXPECT_GE(bits, prev) << node.name;
    prev = bits;
  }
  // 250 nm: 5 ns / 234 ps = 21 elements -> floor(log2) = 4, + 3 coarse.
  EXPECT_EQ(electrical::bits_per_sample_at(electrical::node_by_name("250nm"), fine_range, 3),
            7u);
}

TEST(Scaling, BitsPerSampleEdgeCases) {
  const TechnologyNode& node = electrical::node_by_name("65nm");
  EXPECT_THROW((void)electrical::bits_per_sample_at(node, Time::zero(), 2),
               std::invalid_argument);
  // A range shorter than two elements leaves only the coarse counter.
  EXPECT_EQ(electrical::bits_per_sample_at(node, Time::picoseconds(80.0), 5), 5u);
}
