// Unit tests for the parallel Monte-Carlo sweep engine: determinism
// across thread counts, per-task stream independence, reduction
// merging, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "oci/sim/batch_runner.hpp"
#include "oci/util/random.hpp"
#include "oci/util/statistics.hpp"

namespace {

using oci::sim::BatchConfig;
using oci::sim::BatchRunner;
using oci::util::RngStream;
using oci::util::RunningStats;

BatchRunner make_runner(std::size_t threads, std::uint64_t seed = 20080615) {
  BatchConfig cfg;
  cfg.threads = threads;
  cfg.root_seed = seed;
  return BatchRunner(cfg);
}

// A stochastic per-task workload: several dependent draws so any
// cross-task stream sharing or reordering would change the result.
double mc_task(std::size_t i, RngStream& rng) {
  double acc = static_cast<double>(i);
  for (int k = 0; k < 100; ++k) {
    acc += rng.normal(0.0, 1.0) * rng.uniform();
    if (rng.bernoulli(0.3)) acc += static_cast<double>(rng.poisson(4.0));
  }
  return acc;
}

TEST(BatchRunner, MapIsBitIdenticalAcrossThreadCounts) {
  const auto serial = make_runner(1).map(64, "mc", mc_task);
  for (std::size_t threads : {2u, 3u, 8u}) {
    const auto parallel = make_runner(threads).map(64, "mc", mc_task);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bitwise equality, not tolerance: same stream, same arithmetic.
      EXPECT_EQ(serial[i], parallel[i]) << "task " << i << " diverged at "
                                        << threads << " threads";
    }
  }
}

TEST(BatchRunner, ReduceMergesPartialsDeterministically) {
  auto body = [](std::size_t i, RngStream& rng, RunningStats& stats) {
    for (int k = 0; k < 50; ++k) stats.add(mc_task(i, rng));
  };
  const RunningStats serial = make_runner(1).reduce(16, "reduce", body);
  const RunningStats parallel = make_runner(4).reduce(16, "reduce", body);
  EXPECT_EQ(serial.count(), parallel.count());
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.variance(), parallel.variance());
  EXPECT_EQ(serial.min(), parallel.min());
  EXPECT_EQ(serial.max(), parallel.max());
  EXPECT_EQ(serial.count(), 16u * 50u);
}

TEST(BatchRunner, TaskStreamsAreDecorrelatedAcrossIndexAndLabel) {
  const BatchRunner runner = make_runner(1);
  std::set<std::uint64_t> first_draws;
  for (std::size_t i = 0; i < 256; ++i) {
    RngStream a = runner.task_stream("alpha", i);
    RngStream b = runner.task_stream("beta", i);
    EXPECT_NE(a.engine()(), b.engine()());
    first_draws.insert(runner.task_stream("alpha", i).engine()());
  }
  // All 256 per-index streams produced distinct first draws.
  EXPECT_EQ(first_draws.size(), 256u);
}

TEST(BatchRunner, TaskStreamIsIndependentOfPriorSweeps) {
  const BatchRunner runner = make_runner(3);
  const auto first = runner.map(8, "sweep", mc_task);
  (void)runner.map(32, "other", mc_task);  // interleaved unrelated sweep
  const auto second = runner.map(8, "sweep", mc_task);
  EXPECT_EQ(first, second);
}

// Chunk log accumulator for map_until tests: remembers every chunk's
// first uniform draw so stream identity can be compared run to run.
struct ChunkLog {
  std::vector<double> draws;
};

TEST(BatchRunner, MapUntilIsBitIdenticalAcrossThreadCounts) {
  // Heterogeneous chunk counts (task i runs i%3 + 1 chunks) exercise
  // the scheduler: slow tasks must not perturb fast tasks' streams.
  auto step = [](std::size_t, std::size_t, RngStream& rng, ChunkLog& acc) {
    acc.draws.push_back(rng.uniform());
  };
  auto done = [](std::size_t i, const ChunkLog& acc) {
    return acc.draws.size() >= i % 3 + 1;
  };
  const auto serial = make_runner(1).map_until<ChunkLog>(24, "adaptive", step, done);
  for (std::size_t threads : {2u, 8u}) {
    const auto parallel =
        make_runner(threads).map_until<ChunkLog>(24, "adaptive", step, done);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].draws, parallel[i].draws) << "task " << i;
    }
  }
}

TEST(BatchRunner, IndexedMapUntilMatchesFullRunPerTask) {
  // The explicit-id overload is the sharding primitive: running the id
  // subset {1, 4, 7, ...} must reproduce exactly those slots of the
  // full run, because streams derive from the GLOBAL id, not the slot.
  auto step = [](std::size_t, std::size_t, RngStream& rng, ChunkLog& acc) {
    acc.draws.push_back(rng.uniform());
  };
  auto done = [](std::size_t i, const ChunkLog& acc) {
    return acc.draws.size() >= i % 3 + 1;
  };
  const auto full = make_runner(2).map_until<ChunkLog>(12, "shard", step, done);
  std::vector<std::size_t> ids;
  for (std::size_t g = 1; g < 12; g += 3) ids.push_back(g);
  const auto subset = make_runner(4).map_until<ChunkLog>(ids, "shard", step, done);
  ASSERT_EQ(subset.size(), ids.size());
  for (std::size_t slot = 0; slot < ids.size(); ++slot) {
    EXPECT_EQ(subset[slot].draws, full[ids[slot]].draws) << "task " << ids[slot];
  }
}

TEST(BatchRunner, MapUntilChunksAreIndependentOfStoppingDecision) {
  // The first k chunks of a long run must equal a run that stopped at
  // k: chunk streams are a pure function of (seed, label, index,
  // chunk), never of how many chunks end up running.
  auto step = [](std::size_t, std::size_t, RngStream& rng, ChunkLog& acc) {
    acc.draws.push_back(rng.uniform());
  };
  const auto short_run = make_runner(2).map_until<ChunkLog>(
      8, "stop", step,
      [](std::size_t, const ChunkLog& acc) { return acc.draws.size() >= 2; });
  const auto long_run = make_runner(2).map_until<ChunkLog>(
      8, "stop", step,
      [](std::size_t, const ChunkLog& acc) { return acc.draws.size() >= 5; });
  for (std::size_t i = 0; i < short_run.size(); ++i) {
    ASSERT_EQ(short_run[i].draws.size(), 2u);
    ASSERT_EQ(long_run[i].draws.size(), 5u);
    EXPECT_EQ(short_run[i].draws[0], long_run[i].draws[0]) << "task " << i;
    EXPECT_EQ(short_run[i].draws[1], long_run[i].draws[1]) << "task " << i;
  }
}

TEST(BatchRunner, ChunkStreamsAreDecorrelated) {
  const BatchRunner runner = make_runner(1);
  std::set<std::uint64_t> first_draws;
  for (std::size_t chunk = 0; chunk < 64; ++chunk) {
    first_draws.insert(runner.task_stream("sweep", 3, chunk).engine()());
  }
  // Distinct from each other AND from the per-task (2-arg) stream.
  first_draws.insert(runner.task_stream("sweep", 3).engine()());
  EXPECT_EQ(first_draws.size(), 65u);
  // Pure function: re-derivation yields the same stream.
  EXPECT_EQ(runner.task_stream("sweep", 3, 7).engine()(),
            runner.task_stream("sweep", 3, 7).engine()());
}

TEST(BatchRunner, CoversEveryIndexExactlyOnce) {
  const BatchRunner runner = make_runner(4);
  std::vector<std::atomic<int>> hits(1000);
  runner.for_each_index(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(BatchRunner, PropagatesFirstTaskException) {
  const BatchRunner runner = make_runner(4);
  EXPECT_THROW(runner.for_each_index(64,
                                     [](std::size_t i) {
                                       if (i == 17) {
                                         throw std::runtime_error("task 17");
                                       }
                                     }),
               std::runtime_error);
}

TEST(BatchRunner, ZeroTasksIsANoOp) {
  const BatchRunner runner = make_runner(4);
  runner.for_each_index(0, [](std::size_t) { FAIL() << "must not be called"; });
  EXPECT_TRUE(runner.map(0, "empty", mc_task).empty());
}

TEST(BatchRunner, DefaultThreadCountUsesHardware) {
  if (std::getenv("OCI_BATCH_THREADS") != nullptr) {
    GTEST_SKIP() << "OCI_BATCH_THREADS overrides the default";
  }
  const BatchRunner runner((BatchConfig()));
  EXPECT_GE(runner.threads(), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(runner.threads(), hw);
  }
}

TEST(BatchRunner, EnvVarOverridesThreadCount) {
  ASSERT_EQ(setenv("OCI_BATCH_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(make_runner(8).threads(), 3u);
  ASSERT_EQ(setenv("OCI_BATCH_THREADS", "garbage", 1), 0);
  EXPECT_EQ(make_runner(8).threads(), 8u);
  ASSERT_EQ(unsetenv("OCI_BATCH_THREADS"), 0);
}

}  // namespace
