// Tests for the adaptive transmit-power control loop.
#include <gtest/gtest.h>

#include "oci/link/power_control.hpp"

using namespace oci;
using link::control_power;
using link::PowerControlConfig;
using util::Power;
using util::RngStream;
using util::Time;

link::OpticalLinkConfig pc_link_config() {
  link::OpticalLinkConfig c;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 6;
  c.channel_transmittance = 0.3;
  c.spad.jitter_sigma = Time::picoseconds(40.0);
  c.spad.dcr_at_ref = util::Frequency::hertz(0.0);
  c.spad.afterpulse_probability = 0.0;
  c.calibration_samples = 20000;
  return c;
}

TEST(PowerControl, ValidatesConfig) {
  RngStream rng(521);
  PowerControlConfig ctrl;
  ctrl.target_erasure_rate = 0.0;
  EXPECT_THROW((void)control_power(pc_link_config(), ctrl, 1, rng), std::invalid_argument);
  ctrl = PowerControlConfig{};
  ctrl.min_power = Power::watts(0.0);
  EXPECT_THROW((void)control_power(pc_link_config(), ctrl, 1, rng), std::invalid_argument);
  ctrl = PowerControlConfig{};
  ctrl.step_up = 0.9;
  EXPECT_THROW((void)control_power(pc_link_config(), ctrl, 1, rng), std::invalid_argument);
  ctrl = PowerControlConfig{};
  ctrl.probe_symbols = 0;
  EXPECT_THROW((void)control_power(pc_link_config(), ctrl, 1, rng), std::invalid_argument);
}

TEST(PowerControl, ConvergesAndMeetsTheBudget) {
  PowerControlConfig ctrl;
  ctrl.target_erasure_rate = 0.01;
  ctrl.probe_symbols = 4000;
  RngStream rng(523);
  const auto r = control_power(pc_link_config(), ctrl, 77, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.erasure_rate, ctrl.target_erasure_rate);
  EXPECT_GE(r.chosen_power.watts(), ctrl.min_power.watts());
  EXPECT_LE(r.chosen_power.watts(), ctrl.max_power.watts());
  EXPECT_FALSE(r.trajectory.empty());
  EXPECT_GT(r.energy_per_bit.joules(), 0.0);
}

TEST(PowerControl, AnalyticSeedLandsNearTheAnswer) {
  // The budget-derived first guess should need few refinement steps.
  PowerControlConfig ctrl;
  ctrl.target_erasure_rate = 0.01;
  RngStream rng(541);
  const auto r = control_power(pc_link_config(), ctrl, 79, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.trajectory.size(), 4u);
}

TEST(PowerControl, DeadChannelReportsFailureNotThrow) {
  auto cfg = pc_link_config();
  cfg.channel_transmittance = 1e-9;  // 90 dB path loss
  PowerControlConfig ctrl;
  ctrl.target_erasure_rate = 1e-3;
  ctrl.max_power = Power::microwatts(1.0);  // ceiling far too low
  ctrl.max_iterations = 6;
  RngStream rng(547);
  const auto r = control_power(cfg, ctrl, 83, rng);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.erasure_rate, ctrl.target_erasure_rate);
  EXPECT_LE(r.chosen_power.watts(), ctrl.max_power.watts() * (1.0 + 1e-12));
}

TEST(PowerControl, TightTargetCostsMorePower) {
  PowerControlConfig loose;
  loose.target_erasure_rate = 0.05;
  PowerControlConfig tight;
  tight.target_erasure_rate = 1e-4;
  tight.probe_symbols = 20000;  // resolve the rarer erasures
  RngStream rng1(557), rng2(557);
  const auto r_loose = control_power(pc_link_config(), loose, 89, rng1);
  const auto r_tight = control_power(pc_link_config(), tight, 89, rng2);
  ASSERT_TRUE(r_loose.converged);
  ASSERT_TRUE(r_tight.converged);
  EXPECT_GT(r_tight.chosen_power.watts(), r_loose.chosen_power.watts());
}

TEST(PowerControl, TrajectoryRecordsEveryProbe) {
  PowerControlConfig ctrl;
  ctrl.target_erasure_rate = 0.01;
  ctrl.max_iterations = 3;
  RngStream rng(563);
  const auto r = control_power(pc_link_config(), ctrl, 97, rng);
  EXPECT_LE(r.trajectory.size(), 3u);
  EXPECT_EQ(r.trajectory.back().power.watts(), r.chosen_power.watts());
  EXPECT_EQ(r.trajectory.back().erasure_rate, r.erasure_rate);
}
