// The rare-event acceleration subsystem: level-schedule parsing, band
// resolution, likelihood-ratio weight invariants, agreement of the
// tilted/split estimators with crude MC in the overlap region (and with
// each other at a deep point crude MC cannot reach), and the end-to-end
// scenario contract -- thread-count invariance, zero-success Wilson
// upper bounds, and the effective-sample speedup at a deep-SER point.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "oci/link/optical_link.hpp"
#include "oci/rare/rare.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/spec.hpp"
#include "oci/util/random.hpp"
#include "support/stat_assert.hpp"

namespace {

using namespace oci;
using util::RngStream;
using util::Time;

// ---------- level-schedule parsing ----------

TEST(RareLevels, ParsesColonSeparatedDecreasing) {
  EXPECT_EQ(rare::parse_levels("3:2:1"), (std::vector<double>{3.0, 2.0, 1.0}));
  EXPECT_EQ(rare::parse_levels("2.5"), (std::vector<double>{2.5}));
  EXPECT_EQ(rare::parse_levels("4:1.5:0"), (std::vector<double>{4.0, 1.5, 0.0}));
  EXPECT_TRUE(rare::parse_levels("").empty());
}

TEST(RareLevels, RejectsMalformedSchedules) {
  EXPECT_THROW((void)rare::parse_levels("3:x:1"), std::invalid_argument);
  EXPECT_THROW((void)rare::parse_levels("1:2:3"), std::invalid_argument);  // increasing
  EXPECT_THROW((void)rare::parse_levels("2:2"), std::invalid_argument);    // not strict
  EXPECT_THROW((void)rare::parse_levels("-1"), std::invalid_argument);
  EXPECT_THROW((void)rare::parse_levels("3:"), std::invalid_argument);
  EXPECT_THROW((void)rare::parse_levels("nan"), std::invalid_argument);
  EXPECT_THROW((void)rare::parse_levels("3;2"), std::invalid_argument);
}

// ---------- band resolution ----------

TEST(RareBands, ExplicitLevelsPartitionUnitMass) {
  rare::RareSpec spec;
  spec.kind = rare::Kind::kSplit;
  spec.levels = "3:2:1";
  // Boundary at 312 ps / 60 ps = 5.2 sigma: thresholds 2.2, 3.2, 4.2.
  const auto bands = rare::resolve_bands(spec, 312e-12, 60e-12);
  ASSERT_EQ(bands.size(), 4u);
  double mass = 0.0;
  for (const auto& b : bands) {
    EXPECT_GT(b.mass, 0.0);
    EXPECT_GT(b.survival_lo, b.survival_hi);  // strictly nested strata
    mass += b.mass;
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);
  // Outermost band covers the centre (survival down from 1), innermost
  // reaches the tail (survival down to 0).
  EXPECT_DOUBLE_EQ(bands.front().survival_lo, 1.0);
  EXPECT_DOUBLE_EQ(bands.back().survival_hi, 0.0);
}

TEST(RareBands, AutoScheduleHonoursSplitLevels) {
  rare::RareSpec spec;
  spec.kind = rare::Kind::kSplit;
  spec.split_levels = 6;
  const auto bands = rare::resolve_bands(spec, 312e-12, 60e-12);
  EXPECT_EQ(bands.size(), 7u);  // K thresholds -> K + 1 strata
}

TEST(RareBands, DegenerateSigmaCollapsesToCrude) {
  rare::RareSpec spec;
  spec.kind = rare::Kind::kSplit;
  spec.levels = "3:2:1";
  const auto bands = rare::resolve_bands(spec, 312e-12, 0.0);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_DOUBLE_EQ(bands[0].mass, 1.0);
}

// ---------- run_chunk invariants ----------

/// The deep_ser.spec receiver chain, calibration off for test speed.
link::OpticalLinkConfig deep_config(double jitter_ps) {
  link::OpticalLinkConfig c;
  c.bits_per_symbol = 8;
  c.channel_transmittance = 0.8;
  c.led.peak_power = util::Power::microwatts(50.0);
  c.led.pulse_width = Time::picoseconds(100.0);
  c.spad.dcr_at_ref = util::Frequency::hertz(10.0);
  c.spad.jitter_sigma = Time::picoseconds(jitter_ps);
  c.calibrate = false;
  return c;
}

rare::ChunkResult run_rare(const link::OpticalLink& link, const rare::RareSpec& spec,
                           std::uint64_t samples, std::uint64_t seed) {
  RngStream rng(seed, "chunk");
  return rare::run_chunk(link, spec, samples, /*point_index=*/0, rng);
}

/// Weighted SER of a chunk and its estimator variance (delta method on
/// the weighted mean of the error indicator).
struct WeightedRate {
  double p = 0.0;
  double var = 0.0;
};
WeightedRate weighted_ser(const rare::ChunkResult& r) {
  const auto n = static_cast<double>(r.samples);
  WeightedRate w;
  w.p = (r.w_symbol_errors + r.w_erasures) / n;
  w.var = (r.err_weight_sq / n - w.p * w.p) / n;
  return w;
}

/// Two-sample z-test between estimators with known variances.
::testing::AssertionResult SersConsistent(const WeightedRate& a, const WeightedRate& b,
                                          double alpha) {
  const double se = std::sqrt(std::max(a.var, 0.0) + std::max(b.var, 0.0));
  if (se == 0.0) {
    if (a.p == b.p) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "degenerate rates differ";
  }
  const double z = (a.p - b.p) / se;
  const double z_crit = util::normal_quantile(1.0 - alpha / 2.0);
  if (std::abs(z) <= z_crit) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "weighted rates " << a.p << " and " << b.p << " differ with |z| = "
         << std::abs(z) << " > " << z_crit;
}

TEST(RareChunk, IsAPureFunctionOfTheStreamKey) {
  RngStream process(11, "process");
  const link::OpticalLink link(deep_config(100.0), process);
  rare::RareSpec tilt;
  tilt.kind = rare::Kind::kTilt;
  tilt.jitter_tilt = 1.8;
  const auto a = run_rare(link, tilt, 4000, 99);
  const auto b = run_rare(link, tilt, 4000, 99);
  EXPECT_EQ(a.w_symbol_errors, b.w_symbol_errors);
  EXPECT_EQ(a.weights.sum(), b.weights.sum());
  EXPECT_EQ(a.weights.sum_sq(), b.weights.sum_sq());
  EXPECT_EQ(a.rng_draws, b.rng_draws);

  const auto c = run_rare(link, tilt, 4000, 100);  // different chunk stream
  EXPECT_NE(a.weights.sum(), c.weights.sum());
}

TEST(RareChunk, TiltWeightsAverageToOne) {
  // E[w] = 1 under the proposal: the empirical mean must sit within a
  // few standard errors of 1 (weight_cv bounds the spread).
  RngStream process(12, "process");
  const link::OpticalLink link(deep_config(100.0), process);
  rare::RareSpec tilt;
  tilt.kind = rare::Kind::kTilt;
  tilt.jitter_tilt = 1.8;
  tilt.noise_tilt = 4.0;
  const auto r = run_rare(link, tilt, 20000, 7);
  const auto n = static_cast<double>(r.samples);
  const double mean_w = r.weights.sum() / n;
  const double se = r.weights.weight_cv() * mean_w / std::sqrt(n);
  EXPECT_NEAR(mean_w, 1.0, 5.0 * se);
  EXPECT_GT(r.weights.n_eff(), 0.0);
  EXPECT_LT(r.weights.n_eff(), n + 0.5);  // Kish n_eff <= n always
}

TEST(RareChunk, SplitWeightsSumToSampleCountExactly) {
  // Stratified weights mass_b * samples / n_b sum to `samples` by
  // construction -- the deterministic analogue of E[w] = 1.
  RngStream process(13, "process");
  const link::OpticalLink link(deep_config(60.0), process);
  rare::RareSpec split;
  split.kind = rare::Kind::kSplit;
  split.split_levels = 4;
  const auto r = run_rare(link, split, 10000, 21);
  EXPECT_NEAR(r.weights.sum(), static_cast<double>(r.samples),
              1e-9 * static_cast<double>(r.samples));
}

TEST(RareChunk, TiltAgreesWithCrudeAcrossOverlapConfigs) {
  // Three operating points where crude MC still observes plenty of
  // errors (SER 1e-3..1e-2): the tilted estimator must agree with the
  // crude one by a two-sample z-test at every point.
  for (const double jitter_ps : {100.0, 110.0, 120.0}) {
    RngStream process(14, "process");
    const link::OpticalLink link(deep_config(jitter_ps), process);

    RngStream tx(15, "tx");
    const auto crude = link.measure(60000, tx);
    WeightedRate c;
    c.p = crude.symbol_error_rate();
    c.var = c.p * (1.0 - c.p) / static_cast<double>(crude.symbols_sent);

    rare::RareSpec tilt;
    tilt.kind = rare::Kind::kTilt;
    tilt.jitter_tilt = 1.7;
    const auto r = run_rare(link, tilt, 60000, 16);
    EXPECT_TRUE(SersConsistent(weighted_ser(r), c, 0.001))
        << "at jitter_ps=" << jitter_ps;
  }
}

TEST(RareChunk, SplitAgreesWithCrudeAcrossOverlapConfigs) {
  for (const double jitter_ps : {100.0, 110.0, 120.0}) {
    RngStream process(17, "process");
    const link::OpticalLink link(deep_config(jitter_ps), process);

    RngStream tx(18, "tx");
    const auto crude = link.measure(60000, tx);
    WeightedRate c;
    c.p = crude.symbol_error_rate();
    c.var = c.p * (1.0 - c.p) / static_cast<double>(crude.symbols_sent);

    rare::RareSpec split;
    split.kind = rare::Kind::kSplit;
    split.split_levels = 4;
    const auto r = run_rare(link, split, 60000, 19);
    EXPECT_TRUE(SersConsistent(weighted_ser(r), c, 0.001))
        << "at jitter_ps=" << jitter_ps;
  }
}

TEST(RareChunk, TiltAndSplitAgreeWhereCrudeObservesNothing) {
  // 60 ps: the true SER is ~5e-7 -- no crude budget here sees an error.
  // The two INDEPENDENT accelerated estimators must both report a
  // nonzero rate and agree with each other.
  RngStream process(20, "process");
  const link::OpticalLink link(deep_config(60.0), process);

  rare::RareSpec tilt;
  tilt.kind = rare::Kind::kTilt;
  tilt.jitter_tilt = 2.2;
  const auto rt = run_rare(link, tilt, 60000, 23);

  rare::RareSpec split;
  split.kind = rare::Kind::kSplit;
  split.levels = "3:2:1:0.5";
  const auto rs = run_rare(link, split, 60000, 24);

  const WeightedRate wt = weighted_ser(rt);
  const WeightedRate ws = weighted_ser(rs);
  EXPECT_GT(wt.p, 0.0);
  EXPECT_GT(ws.p, 0.0);
  EXPECT_LT(wt.p, 1e-4);  // genuinely deep
  EXPECT_TRUE(SersConsistent(wt, ws, 0.001));
}

// ---------- end-to-end scenario behaviour ----------

scenario::ScenarioSpec rare_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "rare_e2e";
  spec.seed = 808;
  spec.device = deep_config(60.0);
  spec.budget.samples = 4000;
  spec.budget.repro_scaled = false;
  return spec;
}

TEST(RareScenario, TiltedSweepIsThreadCountInvariant) {
  scenario::ScenarioSpec spec = rare_spec();
  spec.variance.jitter_tilt = 2.0;
  spec.sweep = {scenario::SweepAxis::list("jitter_ps", {60.0, 110.0}),
                scenario::SweepAxis::categories("variance.kind", {"none", "tilt"})};
  const scenario::RunReport one = scenario::ScenarioRunner(1).run(spec);
  const scenario::RunReport eight = scenario::ScenarioRunner(8).run(spec);
  ASSERT_EQ(one.points.size(), eight.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, eight.points[i].metrics);
    EXPECT_EQ(one.points[i].rng_draws, eight.points[i].rng_draws);
    EXPECT_EQ(one.points[i].weights.sum(), eight.points[i].weights.sum());
    EXPECT_EQ(one.points[i].weights.sum_sq(), eight.points[i].weights.sum_sq());
    EXPECT_EQ(one.points[i].err_weight_sq, eight.points[i].err_weight_sq);
  }
}

TEST(RareScenario, SplitSweepIsThreadCountInvariant) {
  scenario::ScenarioSpec spec = rare_spec();
  spec.variance.kind = rare::Kind::kSplit;
  spec.variance.split_levels = 3;
  spec.sweep = {scenario::SweepAxis::list("jitter_ps", {60.0, 110.0})};
  const scenario::RunReport one = scenario::ScenarioRunner(1).run(spec);
  const scenario::RunReport eight = scenario::ScenarioRunner(8).run(spec);
  ASSERT_EQ(one.points.size(), eight.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, eight.points[i].metrics);
    EXPECT_EQ(one.points[i].weights.sum(), eight.points[i].weights.sum());
  }
}

TEST(RareScenario, ZeroSuccessRateReportsWilsonUpperBound) {
  // Crude MC at the deep point: zero observed errors must surface as a
  // one-sided interval, not a bare "0".
  scenario::ScenarioSpec spec = rare_spec();
  const scenario::RunReport r = scenario::ScenarioRunner().run(spec);
  ASSERT_EQ(r.points.size(), 1u);
  const analysis::Estimate& ser = r.estimate(r.points[0], "ser");
  EXPECT_EQ(ser.value, 0.0);
  EXPECT_GT(ser.ci_high, 0.0);
  EXPECT_GT(ser.n_samples, 0u);
  // ...and the printed table renders the bound, not "0.0000".
  std::ostringstream table;
  r.to_table().print(table);
  EXPECT_NE(table.str().find('<'), std::string::npos);
}

TEST(RareScenario, DeepPointBeatsCrudeTwentyFoldInEffectiveSamples) {
  // The acceptance bar: at a 1e-6-class point the tilted estimator's
  // variance corresponds to >= 20x the crude-MC sample budget (the
  // trajectory bench abl_rare records the wall-clock-normalised figure).
  scenario::ScenarioSpec spec = rare_spec();
  spec.variance.kind = rare::Kind::kTilt;
  spec.variance.jitter_tilt = 2.0;
  spec.budget.samples = 20000;
  const scenario::RunReport r = scenario::ScenarioRunner().run(spec);
  ASSERT_EQ(r.points.size(), 1u);
  const scenario::RunPoint& p = r.points[0];
  ASSERT_TRUE(p.weights.active());
  const double phat = r.metric(p, "ser");
  ASSERT_GT(phat, 0.0);
  const auto n = static_cast<double>(p.samples);
  const double var_acc = (p.err_weight_sq / n - phat * phat) / n;
  const double var_crude = phat * (1.0 - phat) / n;
  ASSERT_GT(var_acc, 0.0);
  EXPECT_GE(var_crude / var_acc, 20.0);
}

TEST(RareScenario, WeightedEstimateAgreesWithCrudeInOverlap) {
  // End-to-end overlap cross-validation through the full runner stack
  // (chunking, accumulators, report assembly), not just run_chunk. Two
  // single-point runs under the SAME seed simulate the SAME chip (the
  // uncalibrated mismatch forks off the point stream, and the point
  // index is 0 in both) -- a kind sweep would compare different chips.
  scenario::ScenarioSpec spec = rare_spec();
  spec.device.spad.jitter_sigma = Time::picoseconds(115.0);
  spec.budget.samples = 40000;
  const scenario::RunReport crude = scenario::ScenarioRunner().run(spec);
  spec.variance.kind = rare::Kind::kTilt;
  spec.variance.jitter_tilt = 1.7;
  const scenario::RunReport tilted = scenario::ScenarioRunner().run(spec);
  ASSERT_EQ(crude.points.size(), 1u);
  ASSERT_EQ(tilted.points.size(), 1u);
  const scenario::RunPoint& cp = crude.points[0];
  const scenario::RunPoint& tp = tilted.points[0];
  WeightedRate c;
  c.p = crude.metric(cp, "ser");
  c.var = c.p * (1.0 - c.p) / static_cast<double>(cp.samples);
  WeightedRate w;
  w.p = tilted.metric(tp, "ser");
  w.var = (tp.err_weight_sq / static_cast<double>(tp.samples) - w.p * w.p) /
          static_cast<double>(tp.samples);
  EXPECT_GT(c.p, 0.0);  // genuinely in the overlap region
  EXPECT_TRUE(SersConsistent(w, c, 0.001));
}

}  // namespace
