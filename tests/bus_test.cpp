// Unit tests for the vertical optical bus, TDMA arbitration, and clock
// distribution.
#include <gtest/gtest.h>

#include "oci/bus/arbitration.hpp"
#include "oci/bus/clock_distribution.hpp"
#include "oci/bus/vertical_bus.hpp"

namespace {

using namespace oci::bus;
using oci::link::TdcDesign;
using oci::util::Frequency;
using oci::util::Power;
using oci::util::RngStream;
using oci::util::Time;
using oci::util::Wavelength;

// ---------- TDMA ----------

TEST(Tdma, EqualScheduleRoundRobin) {
  const TdmaSchedule s = TdmaSchedule::equal(4);
  EXPECT_EQ(s.participants(), 4u);
  EXPECT_EQ(s.cycle_slots(), 4u);
  for (std::uint64_t slot = 0; slot < 12; ++slot) {
    EXPECT_EQ(s.owner(slot), slot % 4);
  }
  EXPECT_DOUBLE_EQ(s.share(2), 0.25);
}

TEST(Tdma, WeightedOwnership) {
  const TdmaSchedule s({2, 1, 3});
  EXPECT_EQ(s.cycle_slots(), 6u);
  EXPECT_EQ(s.owner(0), 0u);
  EXPECT_EQ(s.owner(1), 0u);
  EXPECT_EQ(s.owner(2), 1u);
  EXPECT_EQ(s.owner(3), 2u);
  EXPECT_EQ(s.owner(5), 2u);
  EXPECT_EQ(s.owner(6), 0u);  // wraps
  EXPECT_DOUBLE_EQ(s.share(2), 0.5);
}

TEST(Tdma, NextSlotFromAnyPosition) {
  const TdmaSchedule s({2, 1, 3});
  // Participant 1 owns slot 2 within each 6-slot cycle.
  EXPECT_EQ(s.next_slot(1, 0), 2u);
  EXPECT_EQ(s.next_slot(1, 2), 2u);
  EXPECT_EQ(s.next_slot(1, 3), 8u);
  EXPECT_EQ(s.next_slot(0, 1), 1u);
  EXPECT_EQ(s.next_slot(0, 2), 6u);
}

TEST(Tdma, NextSlotIsAlwaysOwned) {
  const TdmaSchedule s({3, 2, 1, 4});
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::uint64_t from = 0; from < 30; ++from) {
      const auto slot = s.next_slot(p, from);
      EXPECT_GE(slot, from);
      EXPECT_EQ(s.owner(slot), p);
    }
  }
}

TEST(Tdma, RejectsBadWeights) {
  EXPECT_THROW(TdmaSchedule({}), std::invalid_argument);
  EXPECT_THROW(TdmaSchedule({1, 0, 2}), std::invalid_argument);
  const TdmaSchedule s({1, 1});
  EXPECT_THROW((void)s.next_slot(5, 0), std::out_of_range);
}

// ---------- vertical bus ----------

VerticalBusConfig bus_config(std::size_t dies = 8) {
  VerticalBusConfig c;
  c.dies = dies;
  c.master = 0;
  c.design = TdcDesign{64, 4, oci::util::Time::picoseconds(52.0)};
  c.led.peak_power = oci::util::Power::microwatts(200.0);
  // NIR wavelength travels much farther through thinned silicon.
  c.led.wavelength = Wavelength::nanometres(850.0);
  return c;
}

TEST(VerticalBus, ReportsCoverAllDies) {
  const VerticalBus bus(bus_config());
  const auto reports = bus.downstream_reports();
  ASSERT_EQ(reports.size(), 8u);
  EXPECT_TRUE(reports[0].serviceable);  // master
  // Transmittance monotonically decreases with distance from master.
  for (std::size_t i = 2; i < reports.size(); ++i) {
    EXPECT_LE(reports[i].transmittance, reports[i - 1].transmittance);
  }
}

TEST(VerticalBus, ServiceableCountsExcludeMaster) {
  const VerticalBus bus(bus_config());
  EXPECT_LE(bus.serviceable_dies(), 7u);
}

TEST(VerticalBus, NearDiesServiceable) {
  const VerticalBus bus(bus_config(4));
  const auto reports = bus.downstream_reports();
  EXPECT_TRUE(reports[1].serviceable);  // adjacent die sees ~85% coupling
}

TEST(VerticalBus, AggregateGoodputScalesWithFanout) {
  const VerticalBus bus(bus_config());
  const double per_die = bus.broadcast_goodput_per_die().bits_per_second();
  EXPECT_NEAR(bus.aggregate_broadcast_goodput().bits_per_second(),
              per_die * static_cast<double>(bus.serviceable_dies()), 1.0);
}

TEST(VerticalBus, UpstreamSharesChannel) {
  const VerticalBus bus(bus_config(8));
  EXPECT_NEAR(bus.upstream_rate_per_die().bits_per_second(),
              bus.broadcast_goodput_per_die().bits_per_second() / 7.0, 1.0);
}

TEST(VerticalBus, BroadcastAmortisesEnergy) {
  const VerticalBus bus(bus_config());
  if (bus.serviceable_dies() >= 2) {
    const oci::photonics::MicroLed led(bus.config().led);
    const double per_pulse = led.electrical_pulse_energy().joules();
    const double bits = oci::link::bits_per_sample(bus.config().design);
    EXPECT_LT(bus.broadcast_energy_per_delivered_bit().joules(), per_pulse / bits);
  }
}

TEST(VerticalBus, RejectsBadConfig) {
  auto c = bus_config();
  c.master = 9;
  EXPECT_THROW(VerticalBus{c}, std::invalid_argument);
  c = bus_config(1);
  EXPECT_THROW(VerticalBus{c}, std::invalid_argument);
}

// ---------- optical clock tree ----------

OpticalClockConfig clock_config() {
  OpticalClockConfig c;
  c.dies = 6;
  c.clock = Frequency::megahertz(200.0);
  c.led.peak_power = Power::microwatts(200.0);
  c.led.wavelength = Wavelength::nanometres(850.0);
  return c;
}

TEST(OpticalClock, SkewIsPicosecondScale) {
  const OpticalClockTree tree(clock_config());
  // Optical flight through < 300 um of silicon: well under 10 ps.
  EXPECT_LT(tree.max_skew().picoseconds(), 10.0);
  EXPECT_GT(tree.max_skew().picoseconds(), 0.0);
}

TEST(OpticalClock, ReportsMasterIsPerfect) {
  const OpticalClockTree tree(clock_config());
  const auto reports = tree.reports();
  EXPECT_DOUBLE_EQ(reports[0].path_skew.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(reports[0].edge_detection_probability, 1.0);
}

TEST(OpticalClock, JitterGrowsWithDistance) {
  const OpticalClockTree tree(clock_config());
  const auto reports = tree.reports();
  // Farther dies see fewer photons -> larger first-photon spread.
  EXPECT_GE(reports[5].jitter_rms.seconds(), reports[1].jitter_rms.seconds());
}

TEST(OpticalClock, PowerBudget) {
  const OpticalClockTree tree(clock_config());
  EXPECT_GT(tree.master_power().watts(), 0.0);
  EXPECT_GT(tree.total_power().watts(), tree.master_power().watts());
}

TEST(OpticalClock, MeasuredJitterFiniteAndSmall) {
  const OpticalClockTree tree(clock_config());
  RngStream rng(443);
  const Time j = tree.measured_edge_jitter(1, 2000, rng);
  EXPECT_GT(j.picoseconds(), 0.0);
  EXPECT_LT(j.picoseconds(), 500.0);
}

TEST(OpticalClock, MasterHasNoJitter) {
  const OpticalClockTree tree(clock_config());
  RngStream rng(449);
  EXPECT_DOUBLE_EQ(tree.measured_edge_jitter(0, 100, rng).seconds(), 0.0);
}

TEST(ElectricalClock, PowerAndSkewModels) {
  ElectricalClockTree tree{ElectricalClockTreeParams{}};
  // 6 levels x 20 pF x 1.44 V^2 x 200 MHz ~ 34.6 mW.
  EXPECT_NEAR(tree.power().milliwatts(), 6 * 20e-12 * 1.44 * 200e6 * 1e3, 0.1);
  EXPECT_GT(tree.skew_3sigma().picoseconds(), 10.0);
  EXPECT_DOUBLE_EQ(tree.insertion_delay().picoseconds(), 360.0);
}

TEST(ClockComparison, OpticalBeatsElectricalOnPower) {
  const OpticalClockTree optical(clock_config());
  ElectricalClockTree electrical{ElectricalClockTreeParams{}};
  // The paper's motivation: optical clock distribution drastically
  // reduces distribution power.
  EXPECT_LT(optical.total_power().watts(), electrical.power().watts());
}

}  // namespace
