// Tests for the conflict-avoiding-code MAC stack: the CAC codeword
// constructions (pairwise conflict-freedom is checked exhaustively for
// small primes), the decentralized wavelength/slot allocator
// (determinism, convergence, feasibility rejection), the CacMac
// arbitration semantics (per-frame collision bound, subset
// reclamation), and the scenario-level properties the thousand-node
// story rests on: CAC out-carries the token MAC under supersaturated
// uniform load at 256 dies (Wilson-separated), reports are
// bit-identical at 1 vs 8 runner threads, and the broadcast-storm
// pattern pins its delivery ratio.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "oci/analysis/report.hpp"
#include "oci/net/cac.hpp"
#include "oci/net/mac.hpp"
#include "oci/net/packet.hpp"
#include "oci/net/stack_network.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/spec.hpp"
#include "oci/util/random.hpp"
#include "support/stat_assert.hpp"

namespace {

using namespace oci;
using net::CacMac;
using net::StackNetwork;
using net::StackNetworkConfig;
using net::TokenMac;
using net::TrafficSpec;
using util::RngStream;
namespace cac = net::cac;

constexpr std::uint64_t kSeed = 20260808;

// ---------- prime machinery ----------

TEST(CacPrimes, ClassifiesAndWalks) {
  EXPECT_FALSE(cac::is_prime(0));
  EXPECT_FALSE(cac::is_prime(1));
  EXPECT_TRUE(cac::is_prime(2));
  EXPECT_TRUE(cac::is_prime(3));
  EXPECT_FALSE(cac::is_prime(9));
  EXPECT_TRUE(cac::is_prime(97));
  EXPECT_FALSE(cac::is_prime(91));  // 7 * 13
  EXPECT_EQ(cac::next_prime(0), 2u);
  EXPECT_EQ(cac::next_prime(8), 11u);
  EXPECT_EQ(cac::next_prime(13), 13u);
  EXPECT_EQ(cac::next_prime(90), 97u);
}

// ---------- codeword constructions ----------

/// Overlap of codewords a (shifted by d mod p) and b, both subsets of
/// Z_p. The CAC property bounds this by 1 for DISTINCT codewords under
/// every relative shift.
std::size_t shifted_overlap(const std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b, std::uint64_t d,
                            std::uint64_t p) {
  std::set<std::uint64_t> shifted;
  for (const std::uint32_t s : a) shifted.insert((s + d) % p);
  std::size_t hits = 0;
  for (const std::uint32_t s : b) hits += shifted.count(s);
  return hits;
}

TEST(CacCodewords, PairwiseConflictFreeExhaustiveSmallPrimes) {
  // The defining CAC property, checked by brute force: for every pair
  // of DISTINCT codewords and every relative cyclic shift, the shifted
  // codewords share at most one slot. (A codeword against its own
  // shift can legitimately overlap in 2 slots -- e.g. {0,g} vs {g,2g}
  // -- which is why each node gets its own codeword.)
  for (const std::uint64_t p : {7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull}) {
    for (const unsigned w : {2u, 3u}) {
      if (p <= 2ull * (w - 1)) continue;
      const auto gens = cac::equi_difference_generators(p, w);
      ASSERT_FALSE(gens.empty()) << "p=" << p << " w=" << w;
      std::vector<std::vector<std::uint32_t>> words;
      words.reserve(gens.size());
      for (const std::uint32_t g : gens) words.push_back(cac::codeword(g, w, p));
      for (std::size_t i = 0; i < words.size(); ++i) {
        for (std::size_t j = 0; j < words.size(); ++j) {
          if (i == j) continue;
          for (std::uint64_t d = 0; d < p; ++d) {
            EXPECT_LE(shifted_overlap(words[i], words[j], d, p), 1u)
                << "p=" << p << " w=" << w << " i=" << i << " j=" << j << " d=" << d;
          }
        }
      }
    }
  }
}

TEST(CacCodewords, WeightTwoPackingIsOptimal) {
  // For w=2 the equi-difference family achieves the (p-1)/2 bound.
  for (const std::uint64_t p : {7ull, 13ull, 31ull, 61ull}) {
    EXPECT_EQ(cac::frame_capacity(p, 2), (p - 1) / 2) << "p=" << p;
  }
}

TEST(CacCodewords, FrameCapacityEdgeCases) {
  EXPECT_EQ(cac::frame_capacity(8, 2), 0u);   // not prime
  EXPECT_EQ(cac::frame_capacity(3, 3), 0u);   // p <= 2(w-1)
  EXPECT_EQ(cac::frame_capacity(11, 1), 11u); // weight 1: phases alone
  EXPECT_THROW((void)cac::equi_difference_generators(8, 2), std::invalid_argument);
  EXPECT_THROW((void)cac::equi_difference_generators(11, 1), std::invalid_argument);
}

TEST(CacCodewords, AutoFrameCoversTheRequest) {
  for (const std::size_t count : {1u, 4u, 17u, 100u, 256u}) {
    for (const unsigned w : {1u, 2u, 3u}) {
      const std::uint64_t p = cac::auto_frame(count, w);
      EXPECT_TRUE(cac::is_prime(p)) << count << "/" << w;
      EXPECT_GE(cac::frame_capacity(p, w), count) << count << "/" << w;
    }
  }
  // w=2: frame ~ 2n+1, i.e. near-perfect packing of the 2n pulse mass.
  EXPECT_LE(cac::auto_frame(100, 2), 229u);
}

// ---------- distributed allocator ----------

TEST(CacAllocator, AllocationIsDeterministicFromTheStream) {
  cac::AllocConfig ac;
  ac.nodes = 48;
  ac.wavelengths = 4;
  ac.weight = 2;
  ac.rounds = 8;
  const cac::DistributedAllocator alloc(ac);

  RngStream a(kSeed, "alloc/0");
  RngStream b(kSeed, "alloc/0");
  const cac::Allocation one = alloc.allocate(a);
  const cac::Allocation two = alloc.allocate(b);
  EXPECT_EQ(one.frame, two.frame);
  EXPECT_EQ(one.wavelength, two.wavelength);
  EXPECT_EQ(one.phase, two.phase);
  EXPECT_EQ(one.slots, two.slots);
  EXPECT_EQ(one.conflict_mass, two.conflict_mass);
  EXPECT_EQ(one.rounds_used, two.rounds_used);
  EXPECT_EQ(a.draws(), b.draws());
  // The allocator draws exactly one initial phase per node; refinement
  // is RNG-free, so the draw count is part of the determinism contract.
  EXPECT_EQ(a.draws(), 48u);

  RngStream other(kSeed, "alloc/1");
  const cac::Allocation three = alloc.allocate(other);
  // A different stream may land on a different schedule (not required,
  // but the shapes must still be valid).
  EXPECT_EQ(three.slots.size(), 48u);
}

TEST(CacAllocator, RefinementRemovesSameWavelengthConflicts) {
  // With 4 wavelengths over a weight-2 frame sized for 12 nodes per
  // wavelength there is a conflict-free assignment; the refinement
  // pass must find one (conflict_mass == 0) and converge early.
  cac::AllocConfig ac;
  ac.nodes = 48;
  ac.wavelengths = 4;
  ac.weight = 2;
  ac.rounds = 16;
  const cac::DistributedAllocator alloc(ac);
  RngStream rng(kSeed, "alloc/0");
  const cac::Allocation a = alloc.allocate(rng);
  EXPECT_EQ(a.conflict_mass, 0u);
  EXPECT_LE(a.rounds_used, 16u);
  // Balanced colouring: every wavelength carries nodes/wavelengths dies.
  std::vector<std::size_t> per_wl(a.wavelengths, 0);
  for (const std::uint32_t wl : a.wavelength) ++per_wl[wl];
  for (const std::size_t n : per_wl) EXPECT_EQ(n, 12u);
  // Same-wavelength codewords must be pairwise slot-disjoint when the
  // conflict mass is zero.
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    for (std::size_t j = i + 1; j < a.slots.size(); ++j) {
      if (a.wavelength[i] != a.wavelength[j]) continue;
      std::vector<std::uint32_t> common;
      std::set_intersection(a.slots[i].begin(), a.slots[i].end(), a.slots[j].begin(),
                            a.slots[j].end(), std::back_inserter(common));
      EXPECT_TRUE(common.empty()) << i << " vs " << j;
    }
  }
}

TEST(CacAllocator, RejectsInfeasibleExplicitFrame) {
  cac::AllocConfig ac;
  ac.nodes = 16;
  ac.wavelengths = 1;
  ac.weight = 2;
  ac.frame = 7;  // capacity (7-1)/2 = 3 < 16
  EXPECT_THROW((void)cac::DistributedAllocator(ac), std::invalid_argument);
  ac.frame = 0;  // auto: must succeed
  EXPECT_NO_THROW((void)cac::DistributedAllocator(ac));
  ac.nodes = 0;
  EXPECT_THROW((void)cac::DistributedAllocator(ac), std::invalid_argument);
}

// ---------- CacMac arbitration ----------

std::unique_ptr<CacMac> make_cac(std::size_t dies, std::size_t wavelengths,
                                 const char* salt = "alloc/0") {
  cac::AllocConfig ac;
  ac.nodes = dies;
  ac.wavelengths = wavelengths;
  ac.weight = 2;
  const cac::DistributedAllocator alloc(ac);
  RngStream rng(kSeed, salt);
  return std::make_unique<CacMac>(alloc.allocate(rng));
}

TEST(CacMacPolicy, FullBacklogCollisionsBoundedPerFrame) {
  // Everyone permanently backlogged is the adversarial worst case: the
  // CAC property guarantees any two dies on the SAME wavelength meet
  // in at most one slot per frame, whatever their phases.
  const std::size_t dies = 20;
  auto mac = make_cac(dies, 2);
  const std::uint64_t frame = mac->frame();
  const auto& alloc = mac->allocation();
  RngStream rng(kSeed, "mac");
  const std::vector<bool> all_busy(dies, true);

  std::vector<std::vector<std::uint64_t>> meetings(dies,
                                                   std::vector<std::uint64_t>(dies, 0));
  for (std::uint64_t slot = 0; slot < frame; ++slot) {
    const net::SlotOutcome out = mac->arbitrate_slot(slot, all_busy, rng);
    // Group the slot's active dies by wavelength and count pair meetings.
    for (const auto& grant : {out.clean, out.collided}) {
      for (std::size_t i = 0; i < grant.size(); ++i) {
        for (std::size_t j = i + 1; j < grant.size(); ++j) {
          const std::size_t a = grant[i];
          const std::size_t b = grant[j];
          if (alloc.wavelength[a] == alloc.wavelength[b]) ++meetings[a][b];
        }
      }
    }
    // A clean grant carries at most one die per wavelength.
    std::set<std::uint32_t> clean_wl;
    for (const std::size_t die : out.clean) {
      EXPECT_TRUE(clean_wl.insert(alloc.wavelength[die]).second)
          << "slot " << slot << ": two clean dies on one wavelength";
    }
  }
  for (std::size_t a = 0; a < dies; ++a) {
    for (std::size_t b = a + 1; b < dies; ++b) {
      EXPECT_LE(meetings[a][b], 1u) << "dies " << a << "," << b;
    }
  }
}

TEST(CacMacPolicy, FlatArbitrateMatchesStructuredUnion) {
  const std::size_t dies = 12;
  auto mac = make_cac(dies, 1);
  RngStream r1(kSeed, "mac");
  RngStream r2(kSeed, "mac");
  std::vector<bool> busy(dies, false);
  for (const std::size_t d : {0u, 3u, 5u, 9u, 11u}) busy[d] = true;
  for (std::uint64_t slot = 0; slot < 2 * mac->frame(); ++slot) {
    const net::SlotGrant flat = mac->arbitrate(slot, busy, r1);
    const net::SlotOutcome out = mac->arbitrate_slot(slot, busy, r2);
    net::SlotGrant joined = out.clean;
    joined.insert(joined.end(), out.collided.begin(), out.collided.end());
    std::sort(joined.begin(), joined.end());
    EXPECT_EQ(flat, joined) << "slot " << slot;
  }
}

TEST(CacMacPolicy, SubsetReclaimsDeadCodewords) {
  // SubsetMac over a CAC built for the SURVIVOR count: the dead dies'
  // codewords return to the pool, the frame shrinks to the survivors'
  // prime, and no grant ever names a dead die.
  const std::size_t dies = 16;
  std::vector<std::size_t> members;
  for (std::size_t d = 0; d < dies; ++d) {
    if (d % 4 != 1) members.push_back(d);  // dies 1,5,9,13 dead
  }
  auto inner = make_cac(members.size(), 2);
  const std::uint64_t survivor_frame = inner->frame();
  // Reclamation means the frame is sized for 12 survivors, strictly
  // shorter than a 16-die frame on the same wavelength budget.
  EXPECT_LT(survivor_frame, make_cac(dies, 2)->frame());

  net::SubsetMac mac(std::move(inner), members, dies);
  RngStream rng(kSeed, "mac");
  const std::vector<bool> all_busy(dies, true);
  std::set<std::size_t> granted;
  for (std::uint64_t slot = 0; slot < 4 * survivor_frame; ++slot) {
    const net::SlotOutcome out = mac.arbitrate_slot(slot, all_busy, rng);
    for (const auto& grant : {out.clean, out.collided}) {
      for (const std::size_t die : grant) granted.insert(die);
    }
  }
  for (const std::size_t d : {1u, 5u, 9u, 13u}) EXPECT_EQ(granted.count(d), 0u);
  // Every survivor transmits somewhere in the window (full backlog).
  EXPECT_EQ(granted.size(), members.size());
}

// ---------- network-level throughput ----------

StackNetworkConfig uniform_config(std::size_t dies, double per_die_load) {
  StackNetworkConfig c;
  c.dies = dies;
  c.traffic.resize(dies);
  for (auto& t : c.traffic) {
    t.packets_per_slot = per_die_load;
    t.uniform_destinations = true;
  }
  return c;
}

TEST(CacMacPolicy, OutCarriesTokenAtScaleWilsonSeparated) {
  // The thousand-node claim at test scale: under supersaturated
  // uniform load at 256 dies, the CAC schedule (4 WDM wavelengths)
  // delivers a strictly larger fraction of offered packets than the
  // token ring, separated by non-overlapping Wilson intervals.
  const std::size_t dies = 256;
  const double offered = 1.4;
  const std::uint64_t slots = 6000;

  StackNetworkConfig cfg = uniform_config(dies, offered / dies);
  RngStream cac_rng(kSeed, "net/cac");
  StackNetwork cac_net(cfg, make_cac(dies, 4));
  const auto cac_res = cac_net.run(slots, cac_rng);

  RngStream tok_rng(kSeed, "net/token");
  StackNetwork tok_net(cfg, std::make_unique<TokenMac>(dies));
  const auto tok_res = tok_net.run(slots, tok_rng);

  const auto cac_ci = test::rate_interval(cac_res.total_delivered(),
                                          cac_res.total_offered(), 1e-4);
  const auto tok_ci = test::rate_interval(tok_res.total_delivered(),
                                          tok_res.total_offered(), 1e-4);
  EXPECT_GT(cac_ci.lo, tok_ci.hi)
      << "cac " << cac_res.delivery_ratio() << " vs token "
      << tok_res.delivery_ratio();
  // And in absolute packets/slot the multi-wavelength schedule clears
  // the single-channel ceiling the token ring is pinned under.
  EXPECT_GT(cac_res.carried_load(), tok_res.carried_load());
  EXPECT_GT(cac_res.carried_load(), 1.05);
}

// ---------- scenario integration ----------

/// Pins the process repro scale so budget resolution is deterministic
/// regardless of the CI environment.
struct ScaleGuard {
  explicit ScaleGuard(double s) { analysis::set_repro_scale_for_test(s); }
  ~ScaleGuard() { analysis::set_repro_scale_for_test(std::nullopt); }
};

scenario::ScenarioSpec cac_noc_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "cac_noc";
  spec.seed = kSeed;
  spec.topology = scenario::Topology::kStackNoc;
  spec.noc.dies = 24;
  spec.noc.mac = "cac";
  spec.noc.alloc_wavelengths = 4;
  spec.noc.offered_load = 1.2;
  spec.budget.samples = 4000;
  spec.budget.repro_scaled = false;
  return spec;
}

TEST(CacScenario, RegistryAcceptsAndValidates) {
  scenario::ScenarioSpec spec;
  scenario::set_param(spec, "mac", "cac");
  EXPECT_EQ(spec.noc.mac, "cac");
  scenario::set_param(spec, "alloc.weight", "3");
  EXPECT_EQ(spec.noc.alloc_weight, 3u);
  scenario::set_param(spec, "alloc.wavelengths", "8");
  EXPECT_EQ(spec.noc.alloc_wavelengths, 8u);
  scenario::set_param(spec, "alloc.frame", "31");
  EXPECT_EQ(spec.noc.alloc_frame, 31u);
  scenario::set_param(spec, "alloc.rounds", "12");
  EXPECT_EQ(spec.noc.alloc_rounds, 12u);
  scenario::set_param(spec, "pattern", "incast");
  EXPECT_EQ(spec.noc.pattern, scenario::NocPattern::kIncast);
  scenario::set_param(spec, "pattern", "broadcast-storm");
  EXPECT_EQ(spec.noc.pattern, scenario::NocPattern::kBroadcastStorm);

  // An infeasible explicit frame is rejected at validation, not at run.
  scenario::ScenarioSpec bad = cac_noc_spec();
  bad.noc.alloc_frame = 7;  // capacity 3 < 6 dies/wavelength
  std::string message;
  try {
    bad.validate();
  } catch (const std::invalid_argument& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("alloc.frame"), std::string::npos) << message;
}

TEST(CacScenario, AllocationIsThreadCountInvariant) {
  // The allocator's stream is keyed (seed, "alloc/<point>"), never by
  // chunk or thread: a CAC sweep must be bit-identical at 1 vs 8
  // runner threads.
  scenario::ScenarioSpec spec = cac_noc_spec();
  spec.sweep = {scenario::SweepAxis::list("dies", {16.0, 24.0}),
                scenario::SweepAxis::categories("mac", {"cac", "token"})};
  const scenario::RunReport one = scenario::ScenarioRunner(1).run(spec);
  const scenario::RunReport eight = scenario::ScenarioRunner(8).run(spec);
  ASSERT_EQ(one.points.size(), eight.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, eight.points[i].metrics) << "point " << i;
    EXPECT_EQ(one.points[i].rng_draws, eight.points[i].rng_draws) << "point " << i;
    EXPECT_EQ(one.points[i].samples, eight.points[i].samples) << "point " << i;
  }
}

TEST(CacScenario, CacComposesWithNodeFaultReclamation) {
  // fault.mac_reclaim + mac=cac: the survivors' codewords are rebuilt
  // by the same alloc stream and the run stays deterministic.
  scenario::ScenarioSpec spec = cac_noc_spec();
  spec.fault.dead_node_fraction = 0.25;
  spec.fault.mac_reclaim = true;
  const scenario::RunReport one = scenario::ScenarioRunner(1).run(spec);
  const scenario::RunReport four = scenario::ScenarioRunner(4).run(spec);
  ASSERT_EQ(one.points.size(), 1u);
  EXPECT_EQ(one.points[0].metrics, four.points[0].metrics);
  EXPECT_EQ(one.points[0].rng_draws, four.points[0].rng_draws);
  // Live dies still move traffic through the reclaimed schedule.
  const double delivery = one.metric(one.points[0], "delivery_ratio");
  EXPECT_GT(delivery, 0.5);
}

TEST(CacScenario, BroadcastStormDeliveryRatioPin) {
  // Broadcast-storm pattern: every die floods kBroadcast traffic. At
  // light aggregate load on the CAC schedule nearly everything lands;
  // the delivered fraction is pinned with a Wilson interval against
  // drift (an intentional behaviour change must retune this).
  ScaleGuard scale(1.0);
  scenario::ScenarioSpec spec = cac_noc_spec();
  spec.noc.pattern = scenario::NocPattern::kBroadcastStorm;
  spec.noc.offered_load = 0.5;
  spec.budget.samples = 6000;
  const scenario::RunReport r = scenario::ScenarioRunner(1).run(spec);
  ASSERT_EQ(r.points.size(), 1u);
  const double ratio = r.metric(r.points[0], "delivery_ratio");
  // ~0.5 packets/slot aggregate over 4 wavelengths: the schedule keeps
  // up and losses stay rare.
  EXPECT_GT(ratio, 0.90);
  EXPECT_LE(ratio, 1.0);

  // Supersaturated storm: the medium cannot carry it all, so the ratio
  // must drop decisively below the light-load pin.
  scenario::ScenarioSpec heavy = cac_noc_spec();
  heavy.noc.pattern = scenario::NocPattern::kBroadcastStorm;
  heavy.noc.offered_load = 8.0;
  heavy.budget.samples = 6000;
  const scenario::RunReport h = scenario::ScenarioRunner(1).run(heavy);
  const double heavy_ratio = h.metric(h.points[0], "delivery_ratio");
  EXPECT_LT(heavy_ratio, 0.75);
  EXPECT_GT(heavy_ratio, 0.0);
}

}  // namespace
