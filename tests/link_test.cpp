// Unit tests for the core link library: trade-off model, budget, error
// model, Monte Carlo link, calibration controller.
#include <gtest/gtest.h>

#include <cmath>

#include "support/stat_assert.hpp"

#include "oci/link/budget.hpp"
#include "oci/link/calibration_controller.hpp"
#include "oci/link/error_model.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/link/tradeoff.hpp"

namespace {

using namespace oci::link;
using oci::util::Energy;
using oci::util::Frequency;
using oci::util::Power;
using oci::util::RngStream;
using oci::util::Temperature;
using oci::util::Time;
using oci::util::Voltage;
using oci::util::Wavelength;

// ---------- trade-off model (the paper's equations) ----------

TEST(Tradeoff, PaperFormulasExactly) {
  // N = 96, C = 5, delta = 52 ps (the paper's FPGA prototype scale).
  const TdcDesign d{96, 5, Time::picoseconds(52.0)};
  const double rf = 96 * 52e-12;
  EXPECT_NEAR(fine_range(d).seconds(), rf, 1e-18);
  EXPECT_NEAR(measurement_window(d).seconds(), (32 + 1) * rf, 1e-18);
  EXPECT_NEAR(detection_cycle(d).seconds(), 32 * rf, 1e-18);
  EXPECT_DOUBLE_EQ(bits_per_sample(d), 6.0 + 5.0);  // floor(log2 96) + 5
  EXPECT_NEAR(throughput(d).bits_per_second(), 11.0 / ((32 + 1) * rf), 1e-3);
}

TEST(Tradeoff, MultiGbpsIsReachable) {
  // The paper claims "throughputs of several gigabits per second":
  // N=16, C=2, delta=10 ps (ASIC-class delta): MW = 0.8 ns, 6 bits -> 7.5 Gbps.
  const TdcDesign asic{16, 2, Time::picoseconds(10.0)};
  EXPECT_GT(throughput(asic).gigabits_per_second(), 5.0);
}

TEST(Tradeoff, ThroughputDecreasesWithC_AtLargeC) {
  // Bits grow linearly in C but MW grows exponentially: TP must fall.
  const Time delta = Time::picoseconds(52.0);
  const double tp_c2 = throughput(TdcDesign{64, 2, delta}).bits_per_second();
  const double tp_c8 = throughput(TdcDesign{64, 8, delta}).bits_per_second();
  EXPECT_GT(tp_c2, tp_c8);
}

TEST(Tradeoff, DetectionCycleMatchesTdcRange) {
  const TdcDesign d{128, 4, Time::picoseconds(40.0)};
  // DC = MW - Rf: the SPAD recovers during the TDC reset window.
  EXPECT_NEAR(detection_cycle(d).seconds(),
              (measurement_window(d) - fine_range(d)).seconds(), 1e-18);
}

TEST(Tradeoff, FeasibilityAgainstDeadTime) {
  const Time delta = Time::picoseconds(52.0);
  // DC(64, 3) = 8 * 64 * 52ps ~ 26.6 ns < 40 ns dead time: infeasible.
  EXPECT_FALSE(feasible(TdcDesign{64, 3, delta}, Time::nanoseconds(40.0)));
  // DC(64, 4) ~ 53 ns >= 40 ns: feasible.
  EXPECT_TRUE(feasible(TdcDesign{64, 4, delta}, Time::nanoseconds(40.0)));
}

TEST(Tradeoff, SweepCoversGrid) {
  const auto grid = sweep(Time::picoseconds(52.0), Time::nanoseconds(40.0), 8, 512, 0, 8);
  // N in {8,16,...,512} = 7 values, C in {0..8} = 9 values.
  EXPECT_EQ(grid.size(), 7u * 9u);
  for (const auto& p : grid) {
    EXPECT_GT(p.tp.bits_per_second(), 0.0);
    EXPECT_GT(p.mw.seconds(), p.dc.seconds());  // MW = DC + Rf
  }
}

TEST(Tradeoff, BestDesignIsFeasibleAndOptimal) {
  const auto best = best_design(Time::picoseconds(52.0), Time::nanoseconds(40.0), 8, 512, 0, 8);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->feasible);
  for (const auto& p :
       sweep(Time::picoseconds(52.0), Time::nanoseconds(40.0), 8, 512, 0, 8)) {
    if (p.feasible) { EXPECT_LE(p.tp.bits_per_second(), best->tp.bits_per_second() + 1e-6); }
  }
}

TEST(Tradeoff, BestDesignRespectsDeadTimeMonotonically) {
  // A slower SPAD can only reduce the best achievable throughput.
  const auto fast = best_design(Time::picoseconds(52.0), Time::nanoseconds(20.0), 8, 512, 0, 8);
  const auto slow = best_design(Time::picoseconds(52.0), Time::nanoseconds(80.0), 8, 512, 0, 8);
  ASSERT_TRUE(fast && slow);
  EXPECT_GE(fast->tp.bits_per_second(), slow->tp.bits_per_second());
}

TEST(Tradeoff, ValidationThrows) {
  EXPECT_THROW((void)fine_range(TdcDesign{1, 2, Time::picoseconds(52.0)}), std::invalid_argument);
  EXPECT_THROW((void)fine_range(TdcDesign{64, 2, Time::zero()}), std::invalid_argument);
  EXPECT_THROW(sweep(Time::picoseconds(52.0), Time::nanoseconds(40.0), 64, 8, 0, 2),
               std::invalid_argument);
}

// ---------- budget ----------

oci::photonics::MicroLedParams bright_led() {
  oci::photonics::MicroLedParams p;
  p.peak_power = Power::microwatts(50.0);
  p.pulse_width = Time::picoseconds(300.0);
  return p;
}

TEST(Budget, ComputesThroughStack) {
  // Through-stack links need NIR: at 450 nm two 50 um dies absorb
  // exp(-255) of the light, so the budget is legitimately zero there.
  auto params = bright_led();
  params.wavelength = Wavelength::nanometres(850.0);
  const oci::photonics::MicroLed led(params);
  const auto stack = oci::photonics::DieStack::uniform(4, oci::photonics::DieSpec{});
  const oci::spad::Spad det(oci::spad::SpadParams{}, Wavelength::nanometres(850.0));
  const LinkBudget b = compute_budget(led, stack, 0, 2, det);
  EXPECT_GT(b.channel_transmittance, 0.0);
  EXPECT_LT(b.channel_transmittance, 1.0);
  EXPECT_NEAR(b.mean_photons_at_detector,
              led.photons_per_pulse() * b.channel_transmittance, 1e-6);
  EXPECT_NEAR(b.mean_detected_photons, b.mean_photons_at_detector * det.pdp(), 1e-9);
  EXPECT_GT(b.pulse_detection_probability, 0.0);
  EXPECT_GT(b.led_electrical_energy.joules(), b.led_optical_energy.joules());
}

TEST(Budget, RequiredPeakPowerClosesTheLoop) {
  const oci::photonics::MicroLed led(bright_led());
  const oci::spad::Spad det(oci::spad::SpadParams{}, Wavelength::nanometres(450.0));
  const double transmittance = 0.01;
  const Power p = required_peak_power(led, transmittance, det, 0.99);
  auto params = bright_led();
  params.peak_power = p;
  const oci::photonics::MicroLed led2(params);
  const double photons = led2.photons_per_pulse() * transmittance;
  EXPECT_NEAR(det.pulse_detection_probability(photons), 0.99, 1e-6);
}

TEST(Budget, RequiredPeakPowerRejectsBadTargets) {
  const oci::photonics::MicroLed led(bright_led());
  const oci::spad::Spad det(oci::spad::SpadParams{}, Wavelength::nanometres(450.0));
  EXPECT_THROW((void)required_peak_power(led, 0.5, det, 1.0), std::invalid_argument);
  EXPECT_THROW((void)required_peak_power(led, 0.0, det, 0.9), std::invalid_argument);
}

// ---------- error model ----------

TEST(ErrorModel, QFunctionKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.96), 0.025, 1e-3);
  EXPECT_LT(q_function(6.0), 1e-8);
}

TEST(ErrorModel, RssSigma) {
  EXPECT_NEAR(rss_sigma(Time::picoseconds(30.0), Time::picoseconds(40.0)).picoseconds(),
              50.0, 1e-9);
}

TEST(ErrorModel, PerfectInputsGiveZeroError) {
  ErrorBudgetInputs in;
  in.pulse_detection_probability = 1.0;
  in.noise_rate = Frequency::hertz(0.0);
  in.afterpulse_probability = 0.0;
  in.timing_sigma = Time::zero();
  const ErrorBudget out = compute_error_budget(in);
  EXPECT_DOUBLE_EQ(out.symbol_error_rate, 0.0);
  EXPECT_DOUBLE_EQ(out.bit_error_rate, 0.0);
}

TEST(ErrorModel, JitterDominatesWhenSlotsNarrow) {
  ErrorBudgetInputs in;
  in.pulse_detection_probability = 1.0;
  in.noise_rate = Frequency::hertz(0.0);
  in.afterpulse_probability = 0.0;
  in.slot_width = Time::picoseconds(100.0);
  in.timing_sigma = Time::picoseconds(100.0);
  const ErrorBudget out = compute_error_budget(in);
  // P(|N(0,100ps)| > 50ps) = 2 Q(0.5) ~ 0.617.
  EXPECT_NEAR(out.p_jitter, 2.0 * q_function(0.5), 1e-9);
  EXPECT_NEAR(out.symbol_error_rate, out.p_jitter, 1e-9);
}

TEST(ErrorModel, CaptureGrowsWithWindowAndNoise) {
  ErrorBudgetInputs in;
  in.noise_rate = Frequency::megahertz(1.0);
  in.toa_window = Time::nanoseconds(30.0);
  const double small = compute_error_budget(in).p_capture;
  in.toa_window = Time::nanoseconds(300.0);
  const double large = compute_error_budget(in).p_capture;
  EXPECT_GT(large, small);
}

TEST(ErrorModel, GrayLabelsReduceJitterBer) {
  ErrorBudgetInputs in;
  in.pulse_detection_probability = 1.0;
  in.noise_rate = Frequency::hertz(0.0);
  in.afterpulse_probability = 0.0;
  in.slot_width = Time::picoseconds(300.0);
  in.timing_sigma = Time::picoseconds(150.0);
  in.bits_per_symbol = 5;
  in.gray_labels = true;
  const double ber_gray = compute_error_budget(in).bit_error_rate;
  in.gray_labels = false;
  const double ber_binary = compute_error_budget(in).bit_error_rate;
  EXPECT_LT(ber_gray, ber_binary);
}

TEST(ErrorModel, RejectsBadInputs) {
  ErrorBudgetInputs in;
  in.slot_width = Time::zero();
  EXPECT_THROW((void)compute_error_budget(in), std::invalid_argument);
  in = ErrorBudgetInputs{};
  in.bits_per_symbol = 0;
  EXPECT_THROW((void)compute_error_budget(in), std::invalid_argument);
}

// ---------- Monte Carlo optical link ----------

OpticalLinkConfig clean_link_config() {
  OpticalLinkConfig c;
  c.design = TdcDesign{64, 4, Time::picoseconds(52.0)};  // DC ~ 53 ns >= 40 ns dead
  c.bits_per_symbol = 5;                                 // wide slots: ~1.7 ns
  c.channel_transmittance = 0.5;
  c.led.peak_power = Power::microwatts(50.0);  // huge photon budget
  c.spad.dcr_at_ref = Frequency::hertz(100.0);
  c.spad.afterpulse_probability = 0.005;
  c.calibration_samples = 100000;
  return c;
}

TEST(OpticalLink, ConstructionDerivesGeometry) {
  RngStream rng(301);
  const OpticalLink link(clean_link_config(), rng);
  EXPECT_EQ(link.bits_per_symbol(), 5u);
  EXPECT_NEAR(link.toa_window().nanoseconds(), 16 * 64 * 0.052, 1e-9);
  // Auto guard: dead (40 ns) minus Rf (64 x 52 ps) appended to MW.
  const double rf_ns = 64 * 0.052;
  EXPECT_NEAR(link.guard().nanoseconds(), 40.0 - rf_ns, 1e-9);
  EXPECT_NEAR(link.symbol_period().nanoseconds(), 17 * rf_ns + (40.0 - rf_ns), 1e-9);
  EXPECT_NEAR(link.ppm().config().slot_width.nanoseconds(), 16 * rf_ns / 32, 1e-9);
  EXPECT_NEAR(link.analytic_throughput().bits_per_second(), 10.0 / (17 * 64 * 52e-12), 1.0);
}

TEST(OpticalLink, ExplicitZeroGuardGivesPaperWindows) {
  auto cfg = clean_link_config();
  cfg.inter_symbol_guard = Time::zero();
  RngStream rng(302);
  const OpticalLink link(cfg, rng);
  EXPECT_DOUBLE_EQ(link.guard().seconds(), 0.0);
  EXPECT_NEAR(link.symbol_period().nanoseconds(), 17 * 64 * 0.052, 1e-9);
}

TEST(OpticalLink, AutoGuardClampsToZeroForFastSpads) {
  // Auto-compute branch, other side: when the SPAD recovers within one
  // fine range Rf, the worst-case inter-pulse gap already covers the
  // dead time and the computed guard must clamp to zero, not go
  // negative.
  auto cfg = clean_link_config();
  cfg.spad.dead_time = Time::nanoseconds(2.0);  // < Rf = 64 x 52 ps ~ 3.33 ns
  RngStream rng(305);
  const OpticalLink link(cfg, rng);
  EXPECT_DOUBLE_EQ(link.guard().seconds(), 0.0);
  EXPECT_NEAR(link.symbol_period().nanoseconds(), 17 * 64 * 0.052, 1e-9);
}

TEST(OpticalLink, ExplicitPositiveGuardIsRespectedVerbatim) {
  // An explicit non-negative guard bypasses the auto-compute entirely,
  // even when it is smaller than what the auto rule would pick.
  auto cfg = clean_link_config();
  cfg.inter_symbol_guard = Time::nanoseconds(3.0);
  RngStream rng(306);
  const OpticalLink link(cfg, rng);
  EXPECT_NEAR(link.guard().nanoseconds(), 3.0, 1e-12);
  EXPECT_NEAR(link.symbol_period().nanoseconds(), 17 * 64 * 0.052 + 3.0, 1e-9);
}

TEST(OpticalLink, PaperExactWindowsSufferInterSymbolErasures) {
  // Without the guard, random data leaves the SPAD blind for early
  // pulses after late ones: the paper's DC >= dead rule alone is not
  // sufficient for back-to-back symbols.
  auto cfg = clean_link_config();
  cfg.inter_symbol_guard = Time::zero();
  RngStream rng(303);
  const OpticalLink link(cfg, rng);
  RngStream tx(304);
  const auto stats = link.measure(4000, tx);
  // Statistical form of "SER > 10%": inter-symbol erasures hit roughly
  // every window whose pulse follows a late one, far above 10%.
  EXPECT_RATE_GT(stats.symbol_errors + stats.erasures, stats.symbols_sent, 0.10, 1e-6);
  // The guard eliminates exactly this failure mode (see
  // MeasureLowErrorOnCleanChannel, which uses the auto guard).
}

TEST(OpticalLink, CleanChannelRoundTripsSymbols) {
  RngStream rng(307);
  const OpticalLink link(clean_link_config(), rng);
  std::vector<std::uint64_t> symbols{0, 1, 31, 17, 5, 30, 2, 9, 16, 8};
  RngStream tx(311);
  const auto result = link.transmit(symbols, tx);
  EXPECT_EQ(result.decoded, symbols);
  EXPECT_EQ(result.stats.symbols_sent, symbols.size());
  EXPECT_EQ(result.stats.symbol_errors + result.stats.erasures, 0u);
  EXPECT_EQ(result.stats.total_bits, symbols.size() * 5);
}

TEST(OpticalLink, MeasureLowErrorOnCleanChannel) {
  RngStream rng(313);
  const OpticalLink link(clean_link_config(), rng);
  RngStream tx(317);
  const auto stats = link.measure(2000, tx);
  EXPECT_EQ(stats.symbols_sent, 2000u);
  // Wilson-interval form of "SER < 1%": a handful of unlucky windows in
  // 2000 symbols no longer flakes the suite, a real rate regression does.
  EXPECT_RATE_LT(stats.symbol_errors + stats.erasures, stats.symbols_sent, 0.01, 1e-6);
  EXPECT_GT(stats.raw_throughput().megabits_per_second(), 40.0);
}

TEST(OpticalLink, ZeroTransmittanceAllErasures) {
  auto cfg = clean_link_config();
  cfg.channel_transmittance = 0.0;
  cfg.spad.dcr_at_ref = Frequency::hertz(0.0);
  RngStream rng(331);
  const OpticalLink link(cfg, rng);
  RngStream tx(337);
  const auto stats = link.measure(200, tx);
  EXPECT_EQ(stats.erasures, 200u);
  EXPECT_DOUBLE_EQ(stats.symbol_error_rate(), 1.0);
}

TEST(OpticalLink, NarrowSlotsDegradeWithJitter) {
  auto cfg = clean_link_config();
  cfg.spad.jitter_sigma = Time::picoseconds(300.0);
  cfg.bits_per_symbol = 0;  // full resolution: slot = 1 LSB = 52 ps << jitter
  RngStream rng(347);
  const OpticalLink link(cfg, rng);
  RngStream tx(349);
  const auto stats = link.measure(500, tx);
  EXPECT_RATE_GT(stats.symbol_errors + stats.erasures, stats.symbols_sent, 0.5, 1e-6);
}

TEST(OpticalLink, EnergyAccounting) {
  RngStream rng(353);
  const auto cfg = clean_link_config();
  const OpticalLink link(cfg, rng);
  RngStream tx(359);
  const auto stats = link.measure(100, tx);
  const double expected_tx = link.led().electrical_pulse_energy().joules() * 100;
  EXPECT_NEAR(stats.tx_energy.joules(), expected_tx, expected_tx * 1e-9);
  EXPECT_NEAR(stats.rx_energy.joules(), cfg.rx_energy_per_conversion.joules() * 100, 1e-18);
  EXPECT_GT(stats.energy_per_bit().joules(), 0.0);
}

TEST(OpticalLink, FrameRoundTrip) {
  RngStream rng(367);
  const OpticalLink link(clean_link_config(), rng);
  oci::modulation::Frame f;
  f.payload = {'h', 'e', 'l', 'l', 'o', ' ', 'o', 'p', 't', 'i', 'c', 's'};
  RngStream tx(373);
  const auto result = link.transmit_frame(f, tx);
  ASSERT_TRUE(result.frame.has_value());
  EXPECT_EQ(result.frame->payload, f.payload);
}

TEST(OpticalLink, BitsPerSymbolCannotExceedResolution) {
  auto cfg = clean_link_config();
  cfg.bits_per_symbol = 11;  // log2(64) + 4 = 10 available
  RngStream rng(379);
  EXPECT_THROW(OpticalLink(cfg, rng), std::invalid_argument);
}

TEST(OpticalLink, StatsRatesConsistent) {
  LinkRunStats s;
  s.symbols_sent = 100;
  s.symbol_errors = 5;
  s.erasures = 5;
  s.total_bits = 500;
  s.bit_errors = 25;
  s.elapsed = Time::microseconds(1.0);
  EXPECT_DOUBLE_EQ(s.symbol_error_rate(), 0.10);
  EXPECT_DOUBLE_EQ(s.bit_error_rate(), 0.05);
  EXPECT_DOUBLE_EQ(s.raw_throughput().megabits_per_second(), 500.0);
  EXPECT_DOUBLE_EQ(s.goodput().megabits_per_second(), 475.0);
}

TEST(OpticalLink, DeterministicGivenSeeds) {
  const auto cfg = clean_link_config();
  RngStream rng1(383), rng2(383);
  const OpticalLink a(cfg, rng1), b(cfg, rng2);
  RngStream tx1(389), tx2(389);
  const auto sa = a.measure(300, tx1);
  const auto sb = b.measure(300, tx2);
  EXPECT_EQ(sa.symbol_errors, sb.symbol_errors);
  EXPECT_EQ(sa.erasures, sb.erasures);
  EXPECT_EQ(sa.bit_errors, sb.bit_errors);
}

// ---------- calibration controller ----------

oci::tdc::Tdc controller_tdc(std::uint64_t seed) {
  RngStream rng(seed);
  oci::tdc::DelayLineParams lp;
  lp.elements = 104;
  lp.nominal_delay = Time::picoseconds(52.0);
  lp.mismatch_sigma = 0.10;
  oci::tdc::DelayLine line(lp, rng);
  oci::tdc::TdcConfig tc;
  tc.coarse_bits = 3;
  tc.clock_period = Time::nanoseconds(4.8);
  return oci::tdc::Tdc(std::move(line), tc);
}

TEST(CalibrationController, RecalibratesOnDrift) {
  auto tdc = controller_tdc(397);
  CalibrationPolicy policy;
  policy.max_temperature_drift_c = 5.0;
  policy.samples = 50000;
  CalibrationController ctl(tdc, policy);

  RngStream cal(401);
  EXPECT_TRUE(ctl.maybe_recalibrate(Time::zero(), cal));  // first call always runs
  EXPECT_EQ(ctl.calibrations_run(), 1u);

  tdc.line().set_conditions(Temperature::celsius(22.0), Voltage::volts(1.5));
  EXPECT_FALSE(ctl.maybe_recalibrate(Time::milliseconds(10.0), cal));

  tdc.line().set_conditions(Temperature::celsius(45.0), Voltage::volts(1.5));
  EXPECT_TRUE(ctl.maybe_recalibrate(Time::milliseconds(20.0), cal));
  EXPECT_EQ(ctl.calibrations_run(), 2u);
  EXPECT_NEAR(ctl.calibrated_at().celsius(), 45.0, 1e-9);
}

TEST(CalibrationController, MinIntervalSuppressesRuns) {
  auto tdc = controller_tdc(409);
  CalibrationPolicy policy;
  policy.min_interval = Time::milliseconds(1.0);
  policy.samples = 20000;
  CalibrationController ctl(tdc, policy);
  RngStream cal(419);
  ctl.calibrate_now(Time::zero(), cal);
  tdc.line().set_conditions(Temperature::celsius(80.0), Voltage::volts(1.5));
  EXPECT_FALSE(ctl.maybe_recalibrate(Time::microseconds(10.0), cal));
  EXPECT_TRUE(ctl.maybe_recalibrate(Time::milliseconds(2.0), cal));
}

TEST(CalibrationController, StaleLutHasWorseResidual) {
  auto tdc = controller_tdc(421);
  CalibrationPolicy policy;
  policy.samples = 200000;
  CalibrationController ctl(tdc, policy);
  RngStream cal(431);
  ctl.calibrate_now(Time::zero(), cal);
  RngStream probe(433);
  const double fresh = ctl.residual_rms_s(3000, probe);

  // Heat the line 40 C without recalibrating: the stale LUT mis-scales.
  tdc.line().set_conditions(Temperature::celsius(60.0), Voltage::volts(1.5));
  RngStream probe2(439);
  const double stale = ctl.residual_rms_s(3000, probe2);
  EXPECT_GT(stale, fresh * 1.5);
}

}  // namespace
