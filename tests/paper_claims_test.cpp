// Paper-claims regression suite: each test pins one quantitative or
// qualitative statement from Favi & Charbon (DAC 2008) to the framework
// so the reproduction cannot silently drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/stat_assert.hpp"

#include "oci/electrical/pad.hpp"
#include "oci/util/samplers.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/link/tradeoff.hpp"
#include "oci/modulation/ook.hpp"
#include "oci/photonics/silicon.hpp"
#include "oci/spad/pdp.hpp"
#include "oci/tdc/calibration.hpp"

namespace {

using namespace oci;
using link::TdcDesign;
using util::RngStream;
using util::Time;
using util::Wavelength;

// "The system clock for our proof-of-concept is 200MHz. The fine chain
// must hence cover at least 5ns."
TEST(PaperClaims, ProofOfConceptClockGeometry) {
  EXPECT_DOUBLE_EQ(util::Frequency::megahertz(200.0).period().nanoseconds(), 5.0);
  // "a chain of 96 elements was sufficient to cover this time window
  // with a maximum of 93 elements used at 20 C"
  tdc::DelayLineParams p;
  p.elements = 96;
  p.nominal_delay = Time::picoseconds(53.8);  // 5 ns / 93 used
  p.mismatch_sigma = 0.0;
  RngStream rng(1);
  const tdc::DelayLine line(p, rng);
  EXPECT_TRUE(line.covers(Time::nanoseconds(5.0)));
  EXPECT_EQ(line.elements_used(Time::nanoseconds(5.0)), 93u);
}

// "The INL was below 1 LSB." -- after code-density measurement on the
// Figure 3 configuration (odd/even sawtooth + moderate mismatch).
TEST(PaperClaims, InlBelowOneLsb) {
  tdc::DelayLineParams p;
  p.elements = 96;
  p.nominal_delay = Time::picoseconds(53.8);
  p.mismatch_sigma = 0.06;
  p.odd_even_skew = 0.35;
  RngStream rng(20080608, "fig3-process");
  tdc::DelayLine line(p, rng);
  tdc::TdcConfig cfg;
  cfg.coarse_bits = 0;
  cfg.clock_period = Time::nanoseconds(5.0);
  const tdc::Tdc tdc(std::move(line), cfg);
  RngStream hits(20080608, "fig3-hits");
  const auto rep = tdc::code_density_test(tdc, 500000, hits);
  EXPECT_LT(rep.max_abs_inl, 1.0);
  EXPECT_LE(rep.max_abs_dnl, 1.0);
}

// "MW(N,C)=(2C+1)Nd", "TP(N,C) = (log2(N)+C)/MW(N,C)",
// "DC(N,C)=(2C)Nd" -- the three equations verbatim.
TEST(PaperClaims, EquationsVerbatim) {
  const Time d = Time::picoseconds(52.0);
  for (std::uint64_t n : {8ull, 64ull, 96ull, 512ull}) {
    for (unsigned c : {0u, 3u, 8u}) {
      const TdcDesign design{n, c, d};
      const double nd = static_cast<double>(n) * d.seconds();
      const double pow2c = static_cast<double>(1ull << c);
      EXPECT_NEAR(link::measurement_window(design).seconds(), (pow2c + 1.0) * nd, 1e-18);
      EXPECT_NEAR(link::detection_cycle(design).seconds(), pow2c * nd, 1e-18);
      EXPECT_NEAR(link::throughput(design).bits_per_second(),
                  (std::floor(std::log2(static_cast<double>(n))) + c) /
                      ((pow2c + 1.0) * nd),
                  1e-3);
    }
  }
}

// "Note that R should be higher than the detection cycle to ensure
// proper operation of the communication link."
TEST(PaperClaims, RangeExceedsDetectionCycleEverywhere) {
  for (const auto& p :
       link::sweep(Time::picoseconds(52.0), Time::nanoseconds(40.0), 8, 512, 0, 8)) {
    EXPECT_GT(p.mw.seconds(), p.dc.seconds());
  }
}

// "In SPADs the detection cycle can be as high as a few tens of
// nanoseconds. Thus, a simple digital modulation scheme must be added
// to achieve throughputs of several gigabit-per-second." -- PPM beats
// the 1-bit-per-cycle OOK ceiling by the bits-per-sample factor.
TEST(PaperClaims, PpmMultipliesDeadTimeLimitedRate) {
  // The realised multiplier is bits-per-sample degraded by (a) the
  // reset Rf (MW/DC = 1 + 2^-C) and (b) the power-of-two granularity
  // of DC against the dead time (worst case just under 2x overshoot).
  // bits/2 is therefore the guaranteed floor over any dead time.
  const Time dead = Time::nanoseconds(40.0);
  const auto ook = modulation::OokCodec::dead_time_limited_rate(dead);
  const auto best = link::best_design(Time::picoseconds(52.0), dead, 8, 512, 0, 8);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(best->bits, 7.0);
  EXPECT_GT(best->tp.bits_per_second(), ook.bits_per_second() * (best->bits / 2.0));

  // When the dead time packs tightly onto the grid (53 ns ~ 1024 x
  // 52 ps) the multiplier approaches the full bits-per-sample factor.
  const Time tight = Time::nanoseconds(53.0);
  const auto ook_tight = modulation::OokCodec::dead_time_limited_rate(tight);
  const auto best_tight =
      link::best_design(Time::picoseconds(52.0), tight, 8, 512, 0, 8);
  ASSERT_TRUE(best_tight.has_value());
  EXPECT_GT(best_tight->tp.bits_per_second(),
            ook_tight.bits_per_second() * (best_tight->bits - 1.0));
}

// "utilizing a fraction of the area and power of a pad"
TEST(PaperClaims, FractionOfPadAreaAndPower) {
  const electrical::WireBondPad pad{electrical::WireBondPadParams{}};
  const spad::SpadParams spad_p;
  const photonics::MicroLedParams led_p;
  const double pad_area = pad.params().pad_area.square_micrometres();
  EXPECT_LT(spad_p.footprint.square_micrometres() + led_p.footprint.square_micrometres(),
            pad_area);

  // Power: optical TX energy/bit far below the pad's CV^2 energy/bit.
  const photonics::MicroLed led(led_p);
  const TdcDesign design{64, 4, Time::picoseconds(52.0)};
  const double optical_epb =
      led.electrical_pulse_energy().joules() / link::bits_per_sample(design);
  EXPECT_LT(optical_epb, pad.energy_per_bit().joules());
}

// "The device can detect very low photon fluxes, thus ensuring minimal
// requirements of optical power at the source." -- 99% detection with
// tens of photons at the detector.
TEST(PaperClaims, FewPhotonsSuffice) {
  const spad::Spad det(spad::SpadParams{}, Wavelength::nanometres(480.0));
  EXPECT_LT(det.required_mean_photons(0.99), 20.0);
}

// Monte-Carlo form of the same claim, asserted statistically: pulses
// delivering the analytic "99% budget" of photons must be detected at a
// rate consistent with 0.99 under a Wilson interval, not under a brittle
// hard threshold.
TEST(PaperClaims, FewPhotonsSufficeMonteCarlo) {
  spad::SpadParams params;
  params.dcr_at_ref = util::Frequency::hertz(0.0);  // isolate the photon statistics
  params.afterpulse_probability = 0.0;
  const spad::Spad det(params, Wavelength::nanometres(480.0));
  const double budget = det.required_mean_photons(0.99);

  RngStream rng(20080608, "few-photons-mc");
  const util::PoissonSampler photon_count(budget);
  const Time window = Time::nanoseconds(200.0);
  constexpr std::uint64_t kPulses = 4000;
  std::uint64_t detected = 0;
  std::vector<photonics::PhotonArrival> photons;
  for (std::uint64_t i = 0; i < kPulses; ++i) {
    const auto n = photon_count.sample(rng);
    photons.clear();
    for (std::int64_t k = 0; k < n; ++k) {
      photons.push_back({rng.uniform_time(Time::nanoseconds(1.0)), true});
    }
    std::sort(photons.begin(), photons.end(),
              [](const auto& a, const auto& b) { return a.time < b.time; });
    if (!det.detect(photons, Time::zero(), window, rng).empty()) ++detected;
  }
  EXPECT_RATE_NEAR(detected, kPulses, 0.99, 1e-4);
}

// "Optical transmission is ensured by low absorption coefficients of
// silicon" -- through THINNED dies; the same budget fails for full-
// thickness wafers, which is exactly why the paper thins the stack.
TEST(PaperClaims, ThinningIsEssential) {
  const Wavelength nir = Wavelength::nanometres(850.0);
  const double thin = photonics::transmittance_si(nir, util::Length::micrometres(50.0));
  const double full = photonics::transmittance_si(nir, util::Length::micrometres(700.0));
  EXPECT_GT(thin, 0.05);   // a 50 um die passes a usable fraction
  EXPECT_LT(full, 1e-14);  // a 700 um wafer does not
}

// "thanks to its digital output it requires no amplification, no A/D
// conversion" -- structurally true in our receiver: detections feed the
// TDC directly. Pin the data-path type: Detection -> TdcReading.
TEST(PaperClaims, DigitalReceiverPath) {
  RngStream rng(7);
  tdc::DelayLineParams lp;
  lp.elements = 104;
  tdc::DelayLine line(lp, rng);
  tdc::TdcConfig cfg;
  cfg.clock_period = Time::nanoseconds(4.8);
  const tdc::Tdc tdc(std::move(line), cfg);
  const spad::Spad det(spad::SpadParams{}, Wavelength::nanometres(480.0));
  RngStream sim(11);
  std::vector<photonics::PhotonArrival> photons{{Time::nanoseconds(10.0), true}};
  const auto dets = det.detect(photons, Time::zero(), Time::nanoseconds(76.8), sim);
  if (!dets.empty()) {
    const auto reading = tdc.convert(dets.front().time, sim);
    EXPECT_LE(reading.code, (8ull << 3) * 104);  // a plain integer code
  }
}

// "could service hundreds of thinned stacked dies" -- with NIR light,
// generous source power and relay-free budget the reach is large; we
// verify the scaling machinery supports deep stacks and that reach
// grows with wavelength (the paper's "low absorption" lever).
TEST(PaperClaims, DeepStackMachinery) {
  photonics::DieSpec die;
  die.thickness = util::Length::micrometres(20.0);  // aggressive thinning
  die.interface_coupling = 0.95;
  const auto stack = photonics::DieStack::uniform(200, die);
  const std::size_t reach_nir = stack.max_reach(Wavelength::nanometres(1050.0), 1e-6);
  const std::size_t reach_red = stack.max_reach(Wavelength::nanometres(650.0), 1e-6);
  EXPECT_GT(reach_nir, 100u);  // hundreds of dies at the band edge
  EXPECT_GT(reach_nir, reach_red);
}

}  // namespace
