// Cross-module integration tests: full receiver chains, analytic-vs-
// Monte-Carlo agreement, bus scenarios on the event kernel, and the
// paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "oci/bus/vertical_bus.hpp"
#include "oci/electrical/pad.hpp"
#include "oci/link/budget.hpp"
#include "oci/link/error_model.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/modulation/ook.hpp"
#include "oci/sim/scheduler.hpp"
#include "oci/spad/spad.hpp"

namespace {

using namespace oci;
using link::OpticalLink;
using link::OpticalLinkConfig;
using link::TdcDesign;
using util::Frequency;
using util::Power;
using util::RngStream;
using util::Time;
using util::Wavelength;

OpticalLinkConfig stack_link_config() {
  OpticalLinkConfig c;
  c.design = TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 5;
  c.led.peak_power = Power::microwatts(200.0);
  c.led.wavelength = Wavelength::nanometres(850.0);  // NIR for through-die reach
  c.calibration_samples = 100000;
  return c;
}

TEST(Integration, LinkOverRealDieStack) {
  // Budget the channel through a 4-die stack, then run the Monte Carlo
  // link with that exact transmittance: the measured erasure rate must
  // match the budget's miss probability.
  const photonics::DieStack stack =
      photonics::DieStack::uniform(4, photonics::DieSpec{});
  auto cfg = stack_link_config();
  const photonics::MicroLed led(cfg.led);
  const spad::Spad det(cfg.spad, cfg.led.wavelength);
  const link::LinkBudget budget = link::compute_budget(led, stack, 0, 3, det);
  cfg.channel_transmittance = budget.channel_transmittance;

  RngStream rng(501);
  const OpticalLink link(cfg, rng);
  RngStream tx(503);
  const auto stats = link.measure(4000, tx);

  const double expected_miss = 1.0 - budget.pulse_detection_probability;
  const double measured_miss =
      static_cast<double>(stats.erasures) / static_cast<double>(stats.symbols_sent);
  EXPECT_NEAR(measured_miss, expected_miss, 0.03 + 2.0 * expected_miss);
}

TEST(Integration, AnalyticErrorModelTracksMonteCarlo) {
  // Configure a link whose dominant error is jitter, then check the
  // analytic budget predicts the Monte Carlo SER within a factor ~2.
  auto cfg = stack_link_config();
  cfg.channel_transmittance = 0.8;
  cfg.bits_per_symbol = 8;  // slot ~ 208 ps
  cfg.spad.jitter_sigma = Time::picoseconds(120.0);
  cfg.spad.dcr_at_ref = Frequency::hertz(0.0);
  cfg.spad.afterpulse_probability = 0.0;

  RngStream rng(509);
  const OpticalLink link(cfg, rng);
  RngStream tx(521);
  const auto stats = link.measure(20000, tx);

  link::ErrorBudgetInputs in;
  in.pulse_detection_probability = 1.0;
  in.noise_rate = Frequency::hertz(0.0);
  in.afterpulse_probability = 0.0;
  in.toa_window = link.toa_window();
  in.slot_width = link.ppm().config().slot_width;
  // Timing noise: SPAD jitter + LED envelope spread (~rect width/sqrt12)
  // + TDC quantisation (~LSB/sqrt12).
  in.timing_sigma = link::rss_sigma(
      cfg.spad.jitter_sigma,
      Time::seconds(cfg.led.pulse_width.seconds() / std::sqrt(12.0)),
      Time::seconds(link.tdc().lsb().seconds() / std::sqrt(12.0)));
  in.bits_per_symbol = link.bits_per_symbol();
  const auto analytic = link::compute_error_budget(in);

  ASSERT_GT(stats.symbol_error_rate(), 0.0);
  EXPECT_GT(stats.symbol_error_rate(), analytic.symbol_error_rate * 0.3);
  EXPECT_LT(stats.symbol_error_rate(), analytic.symbol_error_rate * 3.0 + 0.02);
}

TEST(Integration, PpmBeatsOokUnderDeadTime) {
  // The paper's core argument: with a dead-time-limited SPAD, PPM
  // throughput exceeds the OOK ceiling 1/dead_time.
  const Time dead = Time::nanoseconds(40.0);
  const auto ook = modulation::OokCodec::dead_time_limited_rate(dead);
  const auto best =
      link::best_design(Time::picoseconds(52.0), dead, 8, 512, 0, 8);
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(best->tp.bits_per_second(), 5.0 * ook.bits_per_second());
}

TEST(Integration, OpticalReceiverBeatsPadOnArea) {
  // "The total area of the receiving system is also a fraction of
  // standard pads."
  const electrical::WireBondPad pad(electrical::WireBondPadParams{});
  const spad::SpadParams spad_params;
  const photonics::MicroLedParams led_params;
  EXPECT_LT(spad_params.footprint.square_micrometres(),
            pad.params().pad_area.square_micrometres() / 4.0);
  EXPECT_LT(led_params.footprint.square_micrometres(),
            pad.params().pad_area.square_micrometres() / 4.0);
}

TEST(Integration, RecalibrationRestoresLinkAfterTemperatureStep) {
  auto cfg = stack_link_config();
  cfg.channel_transmittance = 0.8;
  cfg.bits_per_symbol = 8;  // narrow slots so calibration matters
  cfg.spad.jitter_sigma = Time::picoseconds(20.0);

  RngStream rng(541);
  OpticalLink link(cfg, rng);
  RngStream tx(547);
  const double ser_cold = link.measure(4000, tx).symbol_error_rate();

  // Step the junction to 80 C without recalibrating.
  link.set_temperature(util::Temperature::celsius(80.0));
  const double ser_hot_stale = link.measure(4000, tx).symbol_error_rate();

  // Recalibrate at temperature.
  RngStream cal(557);
  link.recalibrate(200000, cal);
  const double ser_hot_fresh = link.measure(4000, tx).symbol_error_rate();

  EXPECT_GT(ser_hot_stale, ser_cold);
  EXPECT_LT(ser_hot_fresh, ser_hot_stale);
}

TEST(Integration, BusFrameExchangeOnScheduler) {
  // Drive a 4-die bus through the event kernel: the master broadcasts a
  // frame, each die receives it on its own link instance; then dies
  // answer in TDMA order. Verifies kernel + bus + link compose.
  sim::Scheduler sched;
  auto cfg = stack_link_config();
  const photonics::DieStack stack =
      photonics::DieStack::uniform(4, photonics::DieSpec{});
  const photonics::MicroLed led(cfg.led);
  const spad::Spad det(cfg.spad, cfg.led.wavelength);

  std::vector<std::unique_ptr<OpticalLink>> links;
  RngStream process(563);
  for (std::size_t die = 1; die < 4; ++die) {
    auto c = cfg;
    c.channel_transmittance =
        link::compute_budget(led, stack, 0, die, det).channel_transmittance;
    links.push_back(std::make_unique<OpticalLink>(c, process));
  }

  modulation::Frame request;
  const std::string msg = "sync";
  request.payload.assign(msg.begin(), msg.end());

  int delivered = 0;
  RngStream tx(569);
  for (std::size_t i = 0; i < links.size(); ++i) {
    sched.schedule_at(Time::microseconds(1.0 * (i + 1)), [&, i] {
      const auto result = links[i]->transmit_frame(request, tx);
      if (result.frame.has_value() && result.frame->payload == request.payload) {
        ++delivered;
      }
    });
  }
  sched.run();
  EXPECT_EQ(delivered, 3);
}

TEST(Integration, BroadcastFeasibilityMatchesBudget) {
  // VerticalBus says a die is serviceable iff its detection probability
  // clears the threshold; verify against direct budget computation.
  bus::VerticalBusConfig c;
  c.dies = 10;
  c.design = TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.led.peak_power = Power::microwatts(200.0);
  c.led.wavelength = Wavelength::nanometres(850.0);
  const bus::VerticalBus vbus(c);
  const photonics::MicroLed led(c.led);
  const spad::Spad det(c.spad, c.led.wavelength);
  for (const auto& r : vbus.downstream_reports()) {
    if (r.die == c.master) continue;
    const auto b = link::compute_budget(led, vbus.stack(), c.master, r.die, det);
    EXPECT_EQ(r.serviceable, b.pulse_detection_probability >= c.min_detection_probability)
        << "die " << r.die;
  }
}

TEST(Integration, FullResolutionMatchesPaperThroughputWhenNoiseless) {
  // With jitter, noise and misses switched off, the Monte Carlo link at
  // full K = log2(N)+C resolution must realise the paper's TP exactly
  // (raw throughput == bits / MW) with zero errors.
  OpticalLinkConfig cfg;
  cfg.design = TdcDesign{64, 3, Time::picoseconds(52.0)};
  cfg.bits_per_symbol = 0;  // full resolution
  cfg.channel_transmittance = 1.0;
  cfg.led.peak_power = Power::microwatts(500.0);
  cfg.led.pulse_width = Time::picoseconds(40.0);  // narrower than the 52 ps slot
  cfg.spad.jitter_sigma = Time::zero();
  cfg.spad.dcr_at_ref = Frequency::hertz(0.0);
  cfg.spad.afterpulse_probability = 0.0;
  // Idealised fast-quench SPAD: dead time below Rf so the auto guard
  // resolves to zero and the symbol period equals the paper's MW.
  cfg.spad.dead_time = Time::nanoseconds(1.0);
  cfg.delay_line.mismatch_sigma = 0.0;
  cfg.delay_line.metastability_window = Time::zero();
  cfg.calibrate = true;
  cfg.calibration_samples = 400000;

  RngStream rng(571);
  const OpticalLink link(cfg, rng);
  RngStream tx(577);
  const auto stats = link.measure(1500, tx);
  EXPECT_EQ(stats.symbol_errors + stats.erasures, 0u)
      << "SER = " << stats.symbol_error_rate();
  EXPECT_NEAR(stats.raw_throughput().bits_per_second(),
              link.analytic_throughput().bits_per_second(),
              link.analytic_throughput().bits_per_second() * 1e-9);
}

}  // namespace
