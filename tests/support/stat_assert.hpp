// Statistical matchers for Monte-Carlo test expectations.
//
// A hard threshold on a measured rate (EXPECT_LT(ser, 0.01)) flakes as
// soon as the sample is small enough for the binomial noise to cross
// the line. These matchers instead test the hypothesis through a
// Wilson score interval at a caller-chosen significance level alpha:
// the assertion only fails when the data is statistically inconsistent
// with the claim, so a passing test stays a passing test under any RNG
// reshuffle of the same physics, while a genuine regression of the
// underlying rate still trips it.
//
//   EXPECT_RATE_NEAR(hits, trials, p, alpha)   p inside the CI
//   EXPECT_RATE_LT(hits, trials, p, alpha)     CI not entirely >= p
//   EXPECT_RATE_GT(hits, trials, p, alpha)     CI not entirely <= p
//   EXPECT_RATES_CONSISTENT(h1, n1, h2, n2, alpha)
//       two-sample pooled z-test that two binomial rates agree
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "oci/util/math.hpp"
#include "oci/util/statistics.hpp"

namespace oci::test {

/// Two-sided Wilson interval at significance alpha (confidence 1-alpha).
inline util::ProportionEstimate rate_interval(std::uint64_t hits, std::uint64_t trials,
                                              double alpha) {
  return util::wilson_interval(hits, trials, util::normal_quantile(1.0 - alpha / 2.0));
}

inline ::testing::AssertionResult RateNear(std::uint64_t hits, std::uint64_t trials,
                                           double p, double alpha) {
  const util::ProportionEstimate ci = rate_interval(hits, trials, alpha);
  if (p >= ci.lo && p <= ci.hi) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "rate " << hits << "/" << trials << " = " << ci.p << " has Wilson CI ["
         << ci.lo << ", " << ci.hi << "] at alpha=" << alpha
         << ", which excludes the expected " << p;
}

/// Asserts the true rate is below p: fails only when even the CI's
/// lower bound clears p, i.e. the data is significantly ABOVE the bound.
inline ::testing::AssertionResult RateLt(std::uint64_t hits, std::uint64_t trials, double p,
                                         double alpha) {
  const util::ProportionEstimate ci = rate_interval(hits, trials, alpha);
  if (ci.lo < p) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "rate " << hits << "/" << trials << " = " << ci.p << " is significantly >= " << p
         << " (Wilson CI [" << ci.lo << ", " << ci.hi << "] at alpha=" << alpha << ")";
}

/// Asserts the true rate is above p (mirror of RateLt).
inline ::testing::AssertionResult RateGt(std::uint64_t hits, std::uint64_t trials, double p,
                                         double alpha) {
  const util::ProportionEstimate ci = rate_interval(hits, trials, alpha);
  if (ci.hi > p) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "rate " << hits << "/" << trials << " = " << ci.p << " is significantly <= " << p
         << " (Wilson CI [" << ci.lo << ", " << ci.hi << "] at alpha=" << alpha << ")";
}

/// Pooled two-proportion z-test: are two binomial samples consistent
/// with one underlying rate? Used to pin statistically-equivalent
/// implementations (e.g. reference pipeline vs LinkEngine) against each
/// other without demanding draw-for-draw identical RNG consumption.
inline ::testing::AssertionResult RatesConsistent(std::uint64_t h1, std::uint64_t n1,
                                                  std::uint64_t h2, std::uint64_t n2,
                                                  double alpha) {
  if (n1 == 0 || n2 == 0) {
    return ::testing::AssertionFailure() << "two-proportion test needs trials on both sides";
  }
  const double p1 = static_cast<double>(h1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(h2) / static_cast<double>(n2);
  const double pooled = static_cast<double>(h1 + h2) / static_cast<double>(n1 + n2);
  const double se = std::sqrt(pooled * (1.0 - pooled) *
                              (1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n2)));
  if (se == 0.0) {
    // Both samples all-hits or all-misses: consistent iff equal.
    if (p1 == p2) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "degenerate rates differ: " << p1 << " vs " << p2;
  }
  const double z = (p1 - p2) / se;
  const double z_crit = util::normal_quantile(1.0 - alpha / 2.0);
  if (std::abs(z) <= z_crit) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "rates " << h1 << "/" << n1 << " = " << p1 << " and " << h2 << "/" << n2 << " = "
         << p2 << " differ with |z| = " << std::abs(z) << " > " << z_crit
         << " at alpha=" << alpha;
}

}  // namespace oci::test

#define EXPECT_RATE_NEAR(hits, trials, p, alpha) \
  EXPECT_TRUE(::oci::test::RateNear((hits), (trials), (p), (alpha)))
#define EXPECT_RATE_LT(hits, trials, p, alpha) \
  EXPECT_TRUE(::oci::test::RateLt((hits), (trials), (p), (alpha)))
#define EXPECT_RATE_GT(hits, trials, p, alpha) \
  EXPECT_TRUE(::oci::test::RateGt((hits), (trials), (p), (alpha)))
#define EXPECT_RATES_CONSISTENT(h1, n1, h2, n2, alpha) \
  EXPECT_TRUE(::oci::test::RatesConsistent((h1), (n1), (h2), (n2), (alpha)))
