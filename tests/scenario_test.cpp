// Tests for the Scenario API: spec validation rejections, the shared
// parameter registry, seed resolution (--seed= / OCI_SEED), the
// spec -> run -> RunReport round trip at a fixed seed (deterministic,
// thread-count independent), and statistical consistency between
// ScenarioRunner's engine resolution and direct hand-wired engine
// calls at the same operating point.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "oci/analysis/report.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/scenario/parse.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/spec.hpp"
#include "support/stat_assert.hpp"

namespace {

using namespace oci;
using scenario::FecKind;
using scenario::NocDelivery;
using scenario::NocPattern;
using scenario::RunPoint;
using scenario::RunReport;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::SweepAxis;
using scenario::Topology;
using scenario::TrafficMode;

constexpr std::uint64_t kSeed = 20260726;

/// Pins the process repro scale for the duration of a test so budget
/// resolution is deterministic regardless of the CI environment.
struct ScaleGuard {
  explicit ScaleGuard(double s) { analysis::set_repro_scale_for_test(s); }
  ~ScaleGuard() { analysis::set_repro_scale_for_test(std::nullopt); }
};

/// Small, fast point-to-point spec (no calibration).
ScenarioSpec tiny_link_spec() {
  ScenarioSpec spec;
  spec.name = "tiny_link";
  spec.seed = kSeed;
  spec.topology = Topology::kPointToPoint;
  spec.device.design = link::TdcDesign{64, 4, util::Time::picoseconds(52.0)};
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.budget.samples = 600;
  spec.budget.repro_scaled = false;
  return spec;
}

std::string validation_message(const ScenarioSpec& spec) {
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioSpec, ValidSpecPasses) {
  EXPECT_NO_THROW(tiny_link_spec().validate());
}

TEST(ScenarioSpec, RejectsZeroWdmChannels) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.wdm.grid.channels = 0;
  EXPECT_NE(validation_message(spec).find("channels >= 1"), std::string::npos);
}

TEST(ScenarioSpec, RejectsFecOverRawSymbolTraffic) {
  ScenarioSpec spec = tiny_link_spec();
  spec.fec = FecKind::kHamming;  // mode stays kAuto -> symbols
  EXPECT_NE(validation_message(spec).find("fec"), std::string::npos);
}

TEST(ScenarioSpec, RejectsFecOverPacketTopology) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kStackNoc;
  spec.fec = FecKind::kHamming;
  EXPECT_NE(validation_message(spec).find("fec"), std::string::npos);
}

TEST(ScenarioSpec, RejectsEmptySweepAxis) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep.push_back(SweepAxis::list("jitter_ps", {}));
  EXPECT_NE(validation_message(spec).find("no points"), std::string::npos);
}

TEST(ScenarioSpec, RejectsUnknownSweepParameter) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep.push_back(SweepAxis::list("warp_factor", {9.0}));
  EXPECT_NE(validation_message(spec).find("unknown parameter 'warp_factor'"),
            std::string::npos);
}

TEST(ScenarioSpec, RejectsNumericAxisOverCategoricalParameter) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kStackNoc;
  spec.sweep.push_back(SweepAxis::list("mac", {1.0, 2.0}));
  EXPECT_NE(validation_message(spec).find("categorical"), std::string::npos);
}

TEST(ScenarioSpec, RejectsZeroBudget) {
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 0;
  EXPECT_NE(validation_message(spec).find("samples"), std::string::npos);
}

TEST(ScenarioSpec, RejectsStructuralParameterSweeps) {
  for (const std::string key : {"topology", "mode", "seed", "name"}) {
    ScenarioSpec spec = tiny_link_spec();
    spec.sweep.push_back(scenario::is_categorical_param(key)
                             ? SweepAxis::categories(key, {"a", "b"})
                             : SweepAxis::list(key, {1.0, 2.0}));
    EXPECT_NE(validation_message(spec).find("structural"), std::string::npos) << key;
  }
}

TEST(ScenarioSpec, SeedParsesFullUint64Range) {
  ScenarioSpec spec;
  scenario::set_param(spec, "seed", "18446744073709551615");  // 2^64 - 1
  EXPECT_EQ(spec.seed, 18446744073709551615ull);
  scenario::set_param(spec, "seed", "9007199254740993");  // 2^53 + 1, not double-exact
  EXPECT_EQ(spec.seed, 9007199254740993ull);
  EXPECT_THROW(scenario::set_param(spec, "seed", "-1"), std::invalid_argument);
  EXPECT_THROW(scenario::set_param(spec, "seed", "99999999999999999999"),
               std::invalid_argument);  // > 2^64
  EXPECT_THROW(scenario::set_param(spec, "seed", "12x"), std::invalid_argument);
}

TEST(ScenarioSpec, RejectsFramesOffPointToPoint) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.mode = TrafficMode::kFrames;
  EXPECT_NE(validation_message(spec).find("frame traffic"), std::string::npos);
}

TEST(ScenarioSpec, RejectsOutOfRangeFaultParameters) {
  ScenarioSpec spec = tiny_link_spec();
  spec.fault.dead_pixel_fraction = 1.5;
  EXPECT_NE(validation_message(spec).find("fault.dead_pixel_fraction"),
            std::string::npos);

  spec = tiny_link_spec();
  spec.fault.dead_pixel_fraction = 0.7;
  spec.fault.hot_pixel_fraction = 0.7;  // sums past the whole array
  EXPECT_NE(validation_message(spec).find("must not exceed 1"), std::string::npos);

  spec = tiny_link_spec();
  spec.fault.link_failure_probability = -0.1;
  EXPECT_NE(validation_message(spec).find("fault.link_failure_probability"),
            std::string::npos);

  spec = tiny_link_spec();
  spec.fault.dead_pixel_fraction = 0.1;
  spec.fault.array_pixels = 0;
  EXPECT_NE(validation_message(spec).find("array_pixels"), std::string::npos);

  spec = tiny_link_spec();
  spec.fault.flaky_attenuation_db = -3.0;
  spec.fault.flaky_window_probability = 0.1;
  EXPECT_NE(validation_message(spec).find("flaky_attenuation_db"), std::string::npos);
}

TEST(ScenarioSpec, RejectsFaultsOnForeignTopologies) {
  // Each fault kind maps to one engine path; arming it anywhere else is
  // a silent no-op and must be rejected instead.
  ScenarioSpec spec = tiny_link_spec();
  spec.fault.dead_channel_fraction = 0.25;  // WDM fault on a p2p link
  EXPECT_NE(validation_message(spec).find("wdm topology"), std::string::npos);

  spec = tiny_link_spec();
  spec.fault.dead_node_fraction = 0.25;  // NoC fault on a p2p link
  EXPECT_NE(validation_message(spec).find("stack-noc topology"), std::string::npos);

  spec = tiny_link_spec();
  spec.topology = Topology::kStackNoc;
  spec.fault.dead_pixel_fraction = 0.25;  // pixel fault on the slot simulation
  EXPECT_NE(validation_message(spec).find("pixel faults"), std::string::npos);

  spec = tiny_link_spec();
  spec.mode = TrafficMode::kCodeDensity;
  spec.fault.tdc_drift_c = 15.0;
  EXPECT_NE(validation_message(spec).find("code-density"), std::string::npos);

  spec = tiny_link_spec();
  spec.fault.dark_window_probability = 0.1;
  spec.aggressors = {scenario::AggressorSpec{10.0, 0.0}};
  EXPECT_NE(validation_message(spec).find("aggressor"), std::string::npos);

  // Killing all but one die must fail: the slot simulation needs a
  // live transmitter AND a live destination.
  spec = tiny_link_spec();
  spec.topology = Topology::kStackNoc;
  spec.noc.dies = 4;
  spec.fault.dead_node_fraction = 0.9;
  EXPECT_NE(validation_message(spec).find("2 live dies"), std::string::npos);
}

TEST(ScenarioSpec, CollectsEveryErrorInOneMessage) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.wdm.grid.channels = 0;
  spec.budget.samples = 0;
  spec.sweep.push_back(SweepAxis::list("bogus", {1.0}));
  const std::string msg = validation_message(spec);
  EXPECT_NE(msg.find("channels"), std::string::npos);
  EXPECT_NE(msg.find("samples"), std::string::npos);
  EXPECT_NE(msg.find("bogus"), std::string::npos);
}

TEST(ScenarioSpec, ParameterRegistryAppliesAndRejects) {
  ScenarioSpec spec;
  scenario::set_param(spec, "jitter_ps", "125");
  EXPECT_DOUBLE_EQ(spec.device.spad.jitter_sigma.picoseconds(), 125.0);
  scenario::set_param(spec, "mac", "aloha");
  EXPECT_EQ(spec.noc.mac, "aloha");
  scenario::set_param(spec, "dies", "12");
  EXPECT_EQ(spec.noc.dies, 12u);
  EXPECT_EQ(spec.bus.dies, 12u);
  scenario::set_param(spec, "tech_node", "65nm");
  EXPECT_NEAR(spec.device.delay_line.nominal_delay.picoseconds(), 60.0, 5.0);

  EXPECT_THROW(scenario::set_param(spec, "nope", "1"), std::invalid_argument);
  EXPECT_THROW(scenario::set_param(spec, "jitter_ps", "fast"), std::invalid_argument);
  EXPECT_THROW(scenario::set_param(spec, "mac", "csma"), std::invalid_argument);
  EXPECT_TRUE(scenario::is_categorical_param("mac"));
  EXPECT_FALSE(scenario::is_categorical_param("jitter_ps"));
  EXPECT_FALSE(scenario::known_params().empty());
}

TEST(ScenarioSpec, SweepAxisFactories) {
  const SweepAxis lin = SweepAxis::linear("jitter_ps", 0.0, 100.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin.values.front(), 0.0);
  EXPECT_DOUBLE_EQ(lin.values.back(), 100.0);
  EXPECT_DOUBLE_EQ(lin.values[2], 50.0);

  const SweepAxis lg = SweepAxis::logspace("samples", 1.0, 100.0, 3);
  ASSERT_EQ(lg.size(), 3u);
  EXPECT_NEAR(lg.values[1], 10.0, 1e-9);

  EXPECT_THROW(SweepAxis::logspace("samples", 0.0, 10.0, 3), std::invalid_argument);

  const SweepAxis cat = SweepAxis::categories("mac", {"tdma", "token"});
  EXPECT_TRUE(cat.categorical());
  EXPECT_EQ(cat.display(1), "token");
}

TEST(ScenarioRunner, GoldenRoundTripIsDeterministic) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 120.0}),
                SweepAxis::categories("labeling", {"gray", "binary"})};

  const RunReport a = ScenarioRunner().run(spec);
  const RunReport b = ScenarioRunner().run(spec);

  ASSERT_EQ(a.points.size(), 4u);
  EXPECT_EQ(a.axis_names, (std::vector<std::string>{"jitter_ps", "labeling"}));
  ASSERT_EQ(a.metric_names.size(), 9u);
  EXPECT_EQ(a.seed, kSeed);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].coordinate, b.points[i].coordinate);
    EXPECT_EQ(a.points[i].metrics, b.points[i].metrics);  // bit-identical
    EXPECT_EQ(a.points[i].rng_draws, b.points[i].rng_draws);
    EXPECT_EQ(a.points[i].samples, 600u);
  }
  // Label lookup round-trips.
  const RunPoint* p = a.find("jitter_ps=120/labeling=gray");
  ASSERT_NE(p, nullptr);
  EXPECT_NO_THROW((void)a.metric(*p, "ser"));
  EXPECT_THROW((void)a.metric(*p, "nope"), std::out_of_range);
  EXPECT_EQ(a.find("jitter_ps=999/labeling=gray"), nullptr);
}

TEST(ScenarioRunner, ThreadCountDoesNotChangeResults) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 80.0, 120.0, 160.0})};
  const RunReport one = ScenarioRunner(1).run(spec);
  const RunReport four = ScenarioRunner(4).run(spec);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, four.points[i].metrics);
    EXPECT_EQ(one.points[i].rng_draws, four.points[i].rng_draws);
  }
}

TEST(ScenarioRunner, MatchesDirectEngineWiringStatistically) {
  // The runner's point-to-point resolution must be the same physics as
  // hand-wiring OpticalLink::measure at the same operating point: a
  // two-proportion z-test on the symbol error counts.
  ScenarioSpec spec = tiny_link_spec();
  spec.device.spad.jitter_sigma = util::Time::picoseconds(130.0);
  spec.budget.samples = 4000;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  const auto scenario_errors = static_cast<std::uint64_t>(
      report.metric(p, "ser") * static_cast<double>(p.samples) + 0.5);

  util::RngStream process(kSeed, "direct-process");
  const link::OpticalLink direct(spec.device, process);
  util::RngStream tx(kSeed, "direct-tx");
  const link::LinkRunStats stats = direct.measure(4000, tx);

  EXPECT_RATES_CONSISTENT(scenario_errors, p.samples, stats.symbol_errors,
                          stats.symbols_sent, 1e-4);
}

TEST(ScenarioRunner, FrameTrafficMatchesDirectFecWiring) {
  ScenarioSpec spec = tiny_link_spec();
  spec.mode = TrafficMode::kFrames;
  spec.fec = FecKind::kHamming;
  spec.payload_bytes = 8;
  spec.device.spad.jitter_sigma = util::Time::picoseconds(150.0);
  spec.device.bits_per_symbol = 8;
  spec.budget.samples = 120;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  EXPECT_DOUBLE_EQ(report.metric(p, "code_rate"), 0.5);
  const double rate = report.metric(p, "delivery_rate");
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

TEST(ScenarioRunner, BudgetRoutesThroughInjectedReproScale) {
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 1000;
  spec.budget.floor = 10;
  spec.budget.repro_scaled = true;

  const ScaleGuard guard(0.05);
  const RunReport report = ScenarioRunner().run(spec);
  EXPECT_EQ(report.points.front().samples, 50u);
  EXPECT_DOUBLE_EQ(report.repro_scale, 0.05);
}

TEST(ScenarioRunner, WdmScenarioRuns) {
  ScenarioSpec spec;
  spec.name = "wdm_smoke";
  spec.seed = kSeed;
  spec.topology = Topology::kWdm;
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.device.led.peak_power = util::Power::microwatts(2.0);
  spec.wdm.grid.channels = 3;
  spec.budget.samples = 60;
  spec.budget.repro_scaled = false;
  spec.sweep = {SweepAxis::list("channels", {1.0, 3.0})};

  const RunReport report = ScenarioRunner().run(spec);
  ASSERT_EQ(report.points.size(), 2u);
  // Aggregate goodput grows with channel count.
  EXPECT_GT(report.metric(report.points[1], "aggregate_gbps"),
            report.metric(report.points[0], "aggregate_gbps"));
}

TEST(ScenarioRunner, VerticalBusScenarioRuns) {
  ScenarioSpec spec;
  spec.name = "bus_smoke";
  spec.seed = kSeed;
  spec.topology = Topology::kVerticalBus;
  spec.device.calibrate = false;
  spec.device.led.peak_power = util::Power::microwatts(150.0);
  spec.device.led.wavelength = util::Wavelength::nanometres(1050.0);
  spec.bus.dies = 4;
  spec.budget.samples = 40;
  spec.budget.repro_scaled = false;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  EXPECT_GE(report.metric(p, "serviceable_dies"), 0.0);
  EXPECT_LE(report.metric(p, "worst_ser"), 1.0);
}

TEST(ScenarioRunner, NocEngineCouplingRuns) {
  ScenarioSpec spec;
  spec.name = "noc_engine_smoke";
  spec.seed = kSeed;
  spec.topology = Topology::kStackNoc;
  spec.device.bits_per_symbol = 8;
  spec.device.calibrate = false;
  spec.noc.dies = 4;
  spec.noc.delivery = NocDelivery::kEngine;
  spec.noc.offered_load = 0.4;
  spec.budget.samples = 400;
  spec.budget.repro_scaled = false;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  EXPECT_GT(report.metric(p, "transfer_p"), 0.0);
  EXPECT_LE(report.metric(p, "carried_load"), 1.0);
}

TEST(ScenarioRunner, AggressorPulsesDegradeTheLink) {
  ScenarioSpec quiet = tiny_link_spec();
  quiet.budget.samples = 1500;
  ScenarioSpec loud = quiet;
  loud.aggressors = {scenario::AggressorSpec{60.0, 0.0}};  // bright co-channel pulse

  const RunReport q = ScenarioRunner().run(quiet);
  const RunReport l = ScenarioRunner().run(loud);
  // The aggressor's triggers surface as noise captures / symbol errors.
  EXPECT_GT(l.metric(l.points.front(), "noise_capture_rate") +
                l.metric(l.points.front(), "ser"),
            q.metric(q.points.front(), "noise_capture_rate") +
                q.metric(q.points.front(), "ser"));
}

TEST(ScenarioRunner, SweepCanPushSpecInvalid) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.device.led.peak_power = util::Power::microwatts(2.0);
  spec.sweep = {SweepAxis::list("channels", {0.0})};  // 0 channels is invalid
  EXPECT_THROW((void)ScenarioRunner().run(spec), std::invalid_argument);
}

TEST(ScenarioReport, TableAndJsonEmit) {
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 50;
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 80.0})};
  const RunReport report = ScenarioRunner().run(spec);

  const util::Table t = report.to_table();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), report.axis_names.size() + report.metric_names.size());

  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("tiny_link"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/scenario_test_bench.json";
  report.write_bench_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"binary\": \"scenario_tiny_link\""), std::string::npos);
  EXPECT_NE(json.find("tiny_link/jitter_ps=40"), std::string::npos);
  EXPECT_NE(json.find("\"rng_draws_per_op\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  // schema 2: every metric is an interval quartet and the run carries
  // environment metadata.
  EXPECT_NE(json.find("\"ser\": { \"value\": "), std::string::npos);
  EXPECT_NE(json.find("\"ci_low\""), std::string::npos);
  EXPECT_NE(json.find("\"ci_high\""), std::string::npos);
  EXPECT_NE(json.find("\"n_samples\""), std::string::npos);
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"adaptive\": false"), std::string::npos);
}

TEST(ScenarioSpec, PrecisionRegistryAndValidation) {
  ScenarioSpec spec = tiny_link_spec();
  scenario::set_param(spec, "precision.half_width", "0.01");
  EXPECT_TRUE(spec.precision.enabled);  // any target arms adaptive mode
  EXPECT_DOUBLE_EQ(spec.precision.target_half_width, 0.01);
  scenario::set_param(spec, "precision.metric", "ser");
  scenario::set_param(spec, "precision.chunk", "250");
  scenario::set_param(spec, "precision.max_samples", "8000");
  EXPECT_NO_THROW(spec.validate());
  scenario::set_param(spec, "precision.enabled", "0");  // explicit off switch
  EXPECT_FALSE(spec.precision.enabled);

  // Enabled with nothing to stop on.
  ScenarioSpec bare = tiny_link_spec();
  bare.precision.enabled = true;
  EXPECT_NE(validation_message(bare).find("stopping target"), std::string::npos);

  // Target metric must exist and must not be deterministic.
  ScenarioSpec unknown = tiny_link_spec();
  unknown.precision.enabled = true;
  unknown.precision.target_half_width = 0.01;
  unknown.precision.metric = "nope";
  EXPECT_NE(validation_message(unknown).find("not a metric"), std::string::npos);
  unknown.precision.metric = "slot_ps";
  EXPECT_NE(validation_message(unknown).find("no confidence interval"),
            std::string::npos);

  // min_samples above even the auto-resolved (8x budget) cap would
  // sample forever past the documented hard cap: rejected up front.
  ScenarioSpec inverted = tiny_link_spec();  // 600 samples -> auto cap 4800
  inverted.precision.enabled = true;
  inverted.precision.target_half_width = 0.01;
  inverted.precision.min_samples = 100000;
  EXPECT_NE(validation_message(inverted).find("resolved adaptive budget cap"),
            std::string::npos);

  // Code-density traffic cannot chunk.
  ScenarioSpec density = tiny_link_spec();
  density.mode = TrafficMode::kCodeDensity;
  density.precision.enabled = true;
  density.precision.target_half_width = 0.01;
  EXPECT_NE(validation_message(density).find("code-density"), std::string::npos);

  // Inverted budget bracket.
  ScenarioSpec bounds = tiny_link_spec();
  bounds.precision.enabled = true;
  bounds.precision.target_half_width = 0.01;
  bounds.precision.min_samples = 500;
  bounds.precision.max_samples = 100;
  EXPECT_NE(validation_message(bounds).find("min_samples"), std::string::npos);
}

TEST(ScenarioAdaptive, FixedModeCarriesIntervalEstimates) {
  ScenarioSpec spec = tiny_link_spec();
  spec.device.spad.jitter_sigma = util::Time::picoseconds(150.0);
  spec.budget.samples = 1000;

  const RunReport report = ScenarioRunner().run(spec);
  EXPECT_FALSE(report.adaptive);
  const RunPoint& p = report.points.front();
  ASSERT_EQ(p.estimates.size(), report.metric_names.size());
  EXPECT_EQ(p.chunks, 1u);

  const analysis::Estimate& ser = report.estimate(p, "ser");
  EXPECT_DOUBLE_EQ(ser.value, report.metric(p, "ser"));
  EXPECT_EQ(ser.n_samples, 1000u);
  // Rate metrics always carry a real interval (Wilson stays
  // informative even at p-hat = 0).
  EXPECT_GT(ser.ci_high, ser.ci_low);
  EXPECT_GE(ser.value, ser.ci_low);
  EXPECT_LE(ser.value, ser.ci_high);
  // One chunk gives mean metrics no spread information...
  const analysis::Estimate& tp = report.estimate(p, "goodput_bps");
  EXPECT_DOUBLE_EQ(tp.half_width(), 0.0);
  // ...and deterministic metrics never have any.
  EXPECT_DOUBLE_EQ(report.estimate(p, "slot_ps").half_width(), 0.0);
  EXPECT_THROW((void)report.estimate(p, "nope"), std::out_of_range);
}

TEST(ScenarioAdaptive, StoppingIsThreadCountInvariant) {
  // The acceptance-critical determinism guarantee WITH adaptive
  // stopping active: per-chunk RNG streams are a pure function of
  // (seed, name, index, chunk), so the stopping decisions -- and every
  // downstream number -- are identical for any pool width.
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 400;
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 120.0, 160.0, 200.0})};
  spec.precision.metric = "ser";
  spec.precision.target_half_width = 0.02;
  spec.precision.chunk = 100;
  spec.precision.max_samples = 1600;
  spec.precision.enabled = true;

  const RunReport one = ScenarioRunner(1).run(spec);
  const RunReport eight = ScenarioRunner(8).run(spec);
  EXPECT_TRUE(one.adaptive);
  ASSERT_EQ(one.points.size(), eight.points.size());
  bool any_multi_chunk = false;
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    const RunPoint& a = one.points[i];
    const RunPoint& b = eight.points[i];
    EXPECT_EQ(a.metrics, b.metrics);  // bit-identical
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.chunks, b.chunks);
    EXPECT_EQ(a.rng_draws, b.rng_draws);
    ASSERT_EQ(a.estimates.size(), b.estimates.size());
    for (std::size_t m = 0; m < a.estimates.size(); ++m) {
      EXPECT_EQ(a.estimates[m].ci_low, b.estimates[m].ci_low);
      EXPECT_EQ(a.estimates[m].ci_high, b.estimates[m].ci_high);
      EXPECT_EQ(a.estimates[m].n_samples, b.estimates[m].n_samples);
    }
    any_multi_chunk = any_multi_chunk || a.chunks > 1;
  }
  // The guarantee must actually be exercised: at least one sweep point
  // ran multiple chunks before its stopping rule fired.
  EXPECT_TRUE(any_multi_chunk);
}

TEST(ScenarioAdaptive, RareEventUpperBoundStopsEarly) {
  ScenarioSpec spec = tiny_link_spec();  // jitterless: ser is ~0
  spec.budget.samples = 1000;
  spec.precision.metric = "ser";
  spec.precision.stop_below = 0.01;  // "confidently below 1%" is enough
  spec.precision.chunk = 200;
  spec.precision.max_samples = 20000;
  spec.precision.enabled = true;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  const analysis::Estimate& ser = report.estimate(p, "ser");
  // Stopped as soon as the Wilson upper bound cleared the threshold --
  // far below the max budget.
  EXPECT_LT(ser.ci_high, 0.01);
  EXPECT_LT(p.samples, 20000u);
  EXPECT_LE(p.chunks, 5u);
}

TEST(ScenarioAdaptive, MaxSamplesIsAHardCap) {
  ScenarioSpec spec = tiny_link_spec();
  spec.device.spad.jitter_sigma = util::Time::picoseconds(200.0);  // noisy
  spec.budget.samples = 400;
  spec.precision.metric = "ser";
  spec.precision.target_half_width = 1e-6;  // unreachable: the cap must fire
  spec.precision.chunk = 60;
  spec.precision.max_samples = 200;  // NOT a chunk multiple
  spec.precision.enabled = true;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  // 60 + 60 + 60 + a clamped 20-sample tail chunk: never overshoots.
  EXPECT_EQ(p.samples, 200u);
  EXPECT_EQ(p.chunks, 4u);
  EXPECT_EQ(report.estimate(p, "ser").n_samples, 200u);
}

TEST(ScenarioAdaptive, MeetsTargetWithThreeFoldFewerSymbols) {
  // The acceptance benchmark, on the checked-in link_jitter scenario:
  // reaching the spec's +/-0.01 SER half-width target everywhere costs
  // a fixed (non-adaptive) budget z^2/(4 h^2) samples at EVERY sweep
  // point -- a fixed budget must assume worst-case variance because it
  // cannot look at the data -- while the adaptive runner spends chunks
  // only where the interval is still wide. Required: >= 3x fewer total
  // symbols at the same guaranteed precision (measured: ~6x), and
  // strictly fewer than even the spec's hand-tuned 4000/point budget.
  const ScaleGuard guard(1.0);
  ScenarioSpec spec;
  ASSERT_NO_THROW(spec = scenario::parse_spec_file(std::string(OCI_SOURCE_DIR) +
                                                   "/scenarios/link_jitter.spec"));
  spec.device.calibration_samples = 2000;  // test speed; physics unchanged
  spec.budget.repro_scaled = false;
  const double target = spec.precision.target_half_width;
  ASSERT_DOUBLE_EQ(target, 0.01);  // the checked-in spec's contract

  ScenarioSpec fixed = spec;
  fixed.precision = scenario::PrecisionSpec{};
  const auto conservative = static_cast<std::uint64_t>(
      std::ceil(1.96 * 1.96 * 0.25 / (target * target)));  // 9604
  fixed.budget.samples = conservative;

  ScenarioSpec adaptive = spec;
  adaptive.precision.chunk = 500;
  adaptive.precision.max_samples = 2 * conservative;

  const RunReport f = ScenarioRunner().run(fixed);
  const RunReport a = ScenarioRunner().run(adaptive);

  std::uint64_t fixed_total = 0;
  std::uint64_t adaptive_total = 0;
  for (const RunPoint& p : f.points) {
    fixed_total += p.samples;
    EXPECT_LE(f.estimate(p, "ser").half_width(), target + 1e-12) << "fixed point";
  }
  for (const RunPoint& p : a.points) {
    adaptive_total += p.samples;
    EXPECT_LE(a.estimate(p, "ser").half_width(), target + 1e-12)
        << "adaptive point " << p.label(a.axis_names);
  }
  RecordProperty("fixed_total_symbols", static_cast<int>(fixed_total));
  RecordProperty("adaptive_total_symbols", static_cast<int>(adaptive_total));
  std::cout << "[adaptive-precision] same +/-" << target
            << " SER half-width: fixed budget " << fixed_total
            << " symbols, adaptive " << adaptive_total << " symbols ("
            << static_cast<double>(fixed_total) / static_cast<double>(adaptive_total)
            << "x fewer)\n";
  EXPECT_LE(3 * adaptive_total, fixed_total);
  // And cheaper than the spec's own fixed 4000/point budget too.
  EXPECT_LT(adaptive_total, 5 * 4000u);
}

TEST(ScenarioPrecision, EnvOverridesArmAdaptiveMode) {
  ASSERT_EQ(setenv("OCI_PRECISION", "0.05", 1), 0);
  ASSERT_EQ(setenv("OCI_MAX_SAMPLES", "700", 1), 0);
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 200;
  const RunReport report = ScenarioRunner().run(spec);
  unsetenv("OCI_PRECISION");
  unsetenv("OCI_MAX_SAMPLES");

  EXPECT_TRUE(report.adaptive);
  const RunPoint& p = report.points.front();
  EXPECT_LE(p.samples, 700u);
  const analysis::Estimate& ser = report.estimate(p, "ser");
  EXPECT_TRUE(ser.half_width() <= 0.05 || p.samples == 700u);

  // The env override FORCES an absolute target: a spec's own looser
  // relative / rare-event rules are cleared, not OR'd in.
  ASSERT_EQ(setenv("OCI_PRECISION", "0.004", 1), 0);
  ScenarioSpec loose = tiny_link_spec();
  loose.precision.enabled = true;
  loose.precision.target_half_width = 0.1;
  loose.precision.target_relative = 0.5;
  loose.precision.stop_below = 0.9;
  scenario::apply_precision_overrides(loose);
  unsetenv("OCI_PRECISION");
  EXPECT_DOUBLE_EQ(loose.precision.target_half_width, 0.004);
  EXPECT_DOUBLE_EQ(loose.precision.target_relative, 0.0);
  EXPECT_DOUBLE_EQ(loose.precision.stop_below, 0.0);

  // Garbled values read as unset.
  ASSERT_EQ(setenv("OCI_PRECISION", "tight", 1), 0);
  EXPECT_FALSE(scenario::precision_from_env().has_value());
  unsetenv("OCI_PRECISION");
  EXPECT_FALSE(scenario::max_samples_from_env().has_value());
}

TEST(ScenarioPrecision, CliArgsConsumedAndExported) {
  char a0[] = "run_scenario";
  char a1[] = "--precision=0.02";
  char a2[] = "--max-samples";
  char a3[] = "999";
  char a4[] = "spec.file";
  char* argv[] = {a0, a1, a2, a3, a4, nullptr};
  int argc = 5;
  scenario::consume_precision_args(argc, argv);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "spec.file");
  ASSERT_TRUE(scenario::precision_from_env().has_value());
  EXPECT_DOUBLE_EQ(*scenario::precision_from_env(), 0.02);
  ASSERT_TRUE(scenario::max_samples_from_env().has_value());
  EXPECT_EQ(*scenario::max_samples_from_env(), 999u);
  unsetenv("OCI_PRECISION");
  unsetenv("OCI_MAX_SAMPLES");

  // An explicit but garbled override throws instead of silently
  // running the wrong experiment, and leaks nothing into the env.
  char g1[] = "--precision=fast";
  char* argv_bad[] = {a0, g1, nullptr};
  int argc_bad = 2;
  EXPECT_THROW(scenario::consume_precision_args(argc_bad, argv_bad),
               std::invalid_argument);
  EXPECT_FALSE(scenario::precision_from_env().has_value());
  char g2[] = "--max-samples=-3";
  char* argv_bad2[] = {a0, g2, nullptr};
  int argc_bad2 = 2;
  EXPECT_THROW(scenario::consume_precision_args(argc_bad2, argv_bad2),
               std::invalid_argument);
  EXPECT_FALSE(scenario::max_samples_from_env().has_value());
}

TEST(ScenarioSeed, EnvOverrideBeatsSpecSeed) {
  ASSERT_EQ(setenv("OCI_SEED", "777", 1), 0);
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 20;
  const RunReport report = ScenarioRunner().run(spec);
  unsetenv("OCI_SEED");
  EXPECT_EQ(report.seed, 777u);

  // Garbled values fall back to the spec seed.
  ASSERT_EQ(setenv("OCI_SEED", "not-a-seed", 1), 0);
  const RunReport fallback = ScenarioRunner().run(spec);
  unsetenv("OCI_SEED");
  EXPECT_EQ(fallback.seed, kSeed);
}

TEST(ScenarioSeed, CliArgConsumedAndWins) {
  // The CLI seed must beat a CONFLICTING pre-existing OCI_SEED --
  // including inside a later ScenarioRunner::run(), which re-resolves
  // the seed itself. The consumed value travels as an explicit
  // in-process override (set_seed_override); the environment variable
  // must stay untouched, not be clobbered with the CLI value (the old
  // workaround, which leaked the override into child processes).
  ASSERT_EQ(setenv("OCI_SEED", "555", 1), 0);
  char a0[] = "bench";
  char a1[] = "--seed=4242";
  char a2[] = "--benchmark_filter=none";
  char* argv[] = {a0, a1, a2, nullptr};
  int argc = 3;
  EXPECT_EQ(scenario::resolve_seed(7, argc, argv), 4242u);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--benchmark_filter=none");
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 20;
  EXPECT_EQ(ScenarioRunner().run(spec).seed, 4242u);
  ASSERT_NE(std::getenv("OCI_SEED"), nullptr);
  EXPECT_STREQ(std::getenv("OCI_SEED"), "555");  // environment untouched
  unsetenv("OCI_SEED");
  scenario::set_seed_override(std::nullopt);

  // Split form: --seed N.
  char b1[] = "--seed";
  char b2[] = "99";
  char* argv2[] = {a0, b1, b2, nullptr};
  int argc2 = 3;
  EXPECT_EQ(scenario::resolve_seed(7, argc2, argv2), 99u);
  EXPECT_EQ(argc2, 1);
  EXPECT_EQ(scenario::seed_override(), std::optional<std::uint64_t>(99u));
  scenario::set_seed_override(std::nullopt);

  // No flag, no env, no override: fallback.
  unsetenv("OCI_SEED");
  char* argv3[] = {a0, nullptr};
  int argc3 = 1;
  EXPECT_EQ(scenario::resolve_seed(7, argc3, argv3), 7u);
}

}  // namespace
