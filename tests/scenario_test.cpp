// Tests for the Scenario API: spec validation rejections, the shared
// parameter registry, seed resolution (--seed= / OCI_SEED), the
// spec -> run -> RunReport round trip at a fixed seed (deterministic,
// thread-count independent), and statistical consistency between
// ScenarioRunner's engine resolution and direct hand-wired engine
// calls at the same operating point.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "oci/analysis/report.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/spec.hpp"
#include "support/stat_assert.hpp"

namespace {

using namespace oci;
using scenario::FecKind;
using scenario::NocDelivery;
using scenario::NocPattern;
using scenario::RunPoint;
using scenario::RunReport;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::SweepAxis;
using scenario::Topology;
using scenario::TrafficMode;

constexpr std::uint64_t kSeed = 20260726;

/// Pins the process repro scale for the duration of a test so budget
/// resolution is deterministic regardless of the CI environment.
struct ScaleGuard {
  explicit ScaleGuard(double s) { analysis::set_repro_scale_for_test(s); }
  ~ScaleGuard() { analysis::set_repro_scale_for_test(std::nullopt); }
};

/// Small, fast point-to-point spec (no calibration).
ScenarioSpec tiny_link_spec() {
  ScenarioSpec spec;
  spec.name = "tiny_link";
  spec.seed = kSeed;
  spec.topology = Topology::kPointToPoint;
  spec.device.design = link::TdcDesign{64, 4, util::Time::picoseconds(52.0)};
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.budget.samples = 600;
  spec.budget.repro_scaled = false;
  return spec;
}

std::string validation_message(const ScenarioSpec& spec) {
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioSpec, ValidSpecPasses) {
  EXPECT_NO_THROW(tiny_link_spec().validate());
}

TEST(ScenarioSpec, RejectsZeroWdmChannels) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.wdm.grid.channels = 0;
  EXPECT_NE(validation_message(spec).find("channels >= 1"), std::string::npos);
}

TEST(ScenarioSpec, RejectsFecOverRawSymbolTraffic) {
  ScenarioSpec spec = tiny_link_spec();
  spec.fec = FecKind::kHamming;  // mode stays kAuto -> symbols
  EXPECT_NE(validation_message(spec).find("fec"), std::string::npos);
}

TEST(ScenarioSpec, RejectsFecOverPacketTopology) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kStackNoc;
  spec.fec = FecKind::kHamming;
  EXPECT_NE(validation_message(spec).find("fec"), std::string::npos);
}

TEST(ScenarioSpec, RejectsEmptySweepAxis) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep.push_back(SweepAxis::list("jitter_ps", {}));
  EXPECT_NE(validation_message(spec).find("no points"), std::string::npos);
}

TEST(ScenarioSpec, RejectsUnknownSweepParameter) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep.push_back(SweepAxis::list("warp_factor", {9.0}));
  EXPECT_NE(validation_message(spec).find("unknown parameter 'warp_factor'"),
            std::string::npos);
}

TEST(ScenarioSpec, RejectsNumericAxisOverCategoricalParameter) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kStackNoc;
  spec.sweep.push_back(SweepAxis::list("mac", {1.0, 2.0}));
  EXPECT_NE(validation_message(spec).find("categorical"), std::string::npos);
}

TEST(ScenarioSpec, RejectsZeroBudget) {
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 0;
  EXPECT_NE(validation_message(spec).find("samples"), std::string::npos);
}

TEST(ScenarioSpec, RejectsStructuralParameterSweeps) {
  for (const std::string key : {"topology", "mode", "seed", "name"}) {
    ScenarioSpec spec = tiny_link_spec();
    spec.sweep.push_back(scenario::is_categorical_param(key)
                             ? SweepAxis::categories(key, {"a", "b"})
                             : SweepAxis::list(key, {1.0, 2.0}));
    EXPECT_NE(validation_message(spec).find("structural"), std::string::npos) << key;
  }
}

TEST(ScenarioSpec, SeedParsesFullUint64Range) {
  ScenarioSpec spec;
  scenario::set_param(spec, "seed", "18446744073709551615");  // 2^64 - 1
  EXPECT_EQ(spec.seed, 18446744073709551615ull);
  scenario::set_param(spec, "seed", "9007199254740993");  // 2^53 + 1, not double-exact
  EXPECT_EQ(spec.seed, 9007199254740993ull);
  EXPECT_THROW(scenario::set_param(spec, "seed", "-1"), std::invalid_argument);
  EXPECT_THROW(scenario::set_param(spec, "seed", "99999999999999999999"),
               std::invalid_argument);  // > 2^64
  EXPECT_THROW(scenario::set_param(spec, "seed", "12x"), std::invalid_argument);
}

TEST(ScenarioSpec, RejectsFramesOffPointToPoint) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.mode = TrafficMode::kFrames;
  EXPECT_NE(validation_message(spec).find("frame traffic"), std::string::npos);
}

TEST(ScenarioSpec, CollectsEveryErrorInOneMessage) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.wdm.grid.channels = 0;
  spec.budget.samples = 0;
  spec.sweep.push_back(SweepAxis::list("bogus", {1.0}));
  const std::string msg = validation_message(spec);
  EXPECT_NE(msg.find("channels"), std::string::npos);
  EXPECT_NE(msg.find("samples"), std::string::npos);
  EXPECT_NE(msg.find("bogus"), std::string::npos);
}

TEST(ScenarioSpec, ParameterRegistryAppliesAndRejects) {
  ScenarioSpec spec;
  scenario::set_param(spec, "jitter_ps", "125");
  EXPECT_DOUBLE_EQ(spec.device.spad.jitter_sigma.picoseconds(), 125.0);
  scenario::set_param(spec, "mac", "aloha");
  EXPECT_EQ(spec.noc.mac, "aloha");
  scenario::set_param(spec, "dies", "12");
  EXPECT_EQ(spec.noc.dies, 12u);
  EXPECT_EQ(spec.bus.dies, 12u);
  scenario::set_param(spec, "tech_node", "65nm");
  EXPECT_NEAR(spec.device.delay_line.nominal_delay.picoseconds(), 60.0, 5.0);

  EXPECT_THROW(scenario::set_param(spec, "nope", "1"), std::invalid_argument);
  EXPECT_THROW(scenario::set_param(spec, "jitter_ps", "fast"), std::invalid_argument);
  EXPECT_THROW(scenario::set_param(spec, "mac", "csma"), std::invalid_argument);
  EXPECT_TRUE(scenario::is_categorical_param("mac"));
  EXPECT_FALSE(scenario::is_categorical_param("jitter_ps"));
  EXPECT_FALSE(scenario::known_params().empty());
}

TEST(ScenarioSpec, SweepAxisFactories) {
  const SweepAxis lin = SweepAxis::linear("jitter_ps", 0.0, 100.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin.values.front(), 0.0);
  EXPECT_DOUBLE_EQ(lin.values.back(), 100.0);
  EXPECT_DOUBLE_EQ(lin.values[2], 50.0);

  const SweepAxis lg = SweepAxis::logspace("samples", 1.0, 100.0, 3);
  ASSERT_EQ(lg.size(), 3u);
  EXPECT_NEAR(lg.values[1], 10.0, 1e-9);

  EXPECT_THROW(SweepAxis::logspace("samples", 0.0, 10.0, 3), std::invalid_argument);

  const SweepAxis cat = SweepAxis::categories("mac", {"tdma", "token"});
  EXPECT_TRUE(cat.categorical());
  EXPECT_EQ(cat.display(1), "token");
}

TEST(ScenarioRunner, GoldenRoundTripIsDeterministic) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 120.0}),
                SweepAxis::categories("labeling", {"gray", "binary"})};

  const RunReport a = ScenarioRunner().run(spec);
  const RunReport b = ScenarioRunner().run(spec);

  ASSERT_EQ(a.points.size(), 4u);
  EXPECT_EQ(a.axis_names, (std::vector<std::string>{"jitter_ps", "labeling"}));
  ASSERT_EQ(a.metric_names.size(), 8u);
  EXPECT_EQ(a.seed, kSeed);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].coordinate, b.points[i].coordinate);
    EXPECT_EQ(a.points[i].metrics, b.points[i].metrics);  // bit-identical
    EXPECT_EQ(a.points[i].rng_draws, b.points[i].rng_draws);
    EXPECT_EQ(a.points[i].samples, 600u);
  }
  // Label lookup round-trips.
  const RunPoint* p = a.find("jitter_ps=120/labeling=gray");
  ASSERT_NE(p, nullptr);
  EXPECT_NO_THROW((void)a.metric(*p, "ser"));
  EXPECT_THROW((void)a.metric(*p, "nope"), std::out_of_range);
  EXPECT_EQ(a.find("jitter_ps=999/labeling=gray"), nullptr);
}

TEST(ScenarioRunner, ThreadCountDoesNotChangeResults) {
  ScenarioSpec spec = tiny_link_spec();
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 80.0, 120.0, 160.0})};
  const RunReport one = ScenarioRunner(1).run(spec);
  const RunReport four = ScenarioRunner(4).run(spec);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, four.points[i].metrics);
    EXPECT_EQ(one.points[i].rng_draws, four.points[i].rng_draws);
  }
}

TEST(ScenarioRunner, MatchesDirectEngineWiringStatistically) {
  // The runner's point-to-point resolution must be the same physics as
  // hand-wiring OpticalLink::measure at the same operating point: a
  // two-proportion z-test on the symbol error counts.
  ScenarioSpec spec = tiny_link_spec();
  spec.device.spad.jitter_sigma = util::Time::picoseconds(130.0);
  spec.budget.samples = 4000;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  const auto scenario_errors = static_cast<std::uint64_t>(
      report.metric(p, "ser") * static_cast<double>(p.samples) + 0.5);

  util::RngStream process(kSeed, "direct-process");
  const link::OpticalLink direct(spec.device, process);
  util::RngStream tx(kSeed, "direct-tx");
  const link::LinkRunStats stats = direct.measure(4000, tx);

  EXPECT_RATES_CONSISTENT(scenario_errors, p.samples, stats.symbol_errors,
                          stats.symbols_sent, 1e-4);
}

TEST(ScenarioRunner, FrameTrafficMatchesDirectFecWiring) {
  ScenarioSpec spec = tiny_link_spec();
  spec.mode = TrafficMode::kFrames;
  spec.fec = FecKind::kHamming;
  spec.payload_bytes = 8;
  spec.device.spad.jitter_sigma = util::Time::picoseconds(150.0);
  spec.device.bits_per_symbol = 8;
  spec.budget.samples = 120;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  EXPECT_DOUBLE_EQ(report.metric(p, "code_rate"), 0.5);
  const double rate = report.metric(p, "delivery_rate");
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

TEST(ScenarioRunner, BudgetRoutesThroughInjectedReproScale) {
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 1000;
  spec.budget.floor = 10;
  spec.budget.repro_scaled = true;

  const ScaleGuard guard(0.05);
  const RunReport report = ScenarioRunner().run(spec);
  EXPECT_EQ(report.points.front().samples, 50u);
  EXPECT_DOUBLE_EQ(report.repro_scale, 0.05);
}

TEST(ScenarioRunner, WdmScenarioRuns) {
  ScenarioSpec spec;
  spec.name = "wdm_smoke";
  spec.seed = kSeed;
  spec.topology = Topology::kWdm;
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.device.led.peak_power = util::Power::microwatts(2.0);
  spec.wdm.grid.channels = 3;
  spec.budget.samples = 60;
  spec.budget.repro_scaled = false;
  spec.sweep = {SweepAxis::list("channels", {1.0, 3.0})};

  const RunReport report = ScenarioRunner().run(spec);
  ASSERT_EQ(report.points.size(), 2u);
  // Aggregate goodput grows with channel count.
  EXPECT_GT(report.metric(report.points[1], "aggregate_gbps"),
            report.metric(report.points[0], "aggregate_gbps"));
}

TEST(ScenarioRunner, VerticalBusScenarioRuns) {
  ScenarioSpec spec;
  spec.name = "bus_smoke";
  spec.seed = kSeed;
  spec.topology = Topology::kVerticalBus;
  spec.device.calibrate = false;
  spec.device.led.peak_power = util::Power::microwatts(150.0);
  spec.device.led.wavelength = util::Wavelength::nanometres(1050.0);
  spec.bus.dies = 4;
  spec.budget.samples = 40;
  spec.budget.repro_scaled = false;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  EXPECT_GE(report.metric(p, "serviceable_dies"), 0.0);
  EXPECT_LE(report.metric(p, "worst_ser"), 1.0);
}

TEST(ScenarioRunner, NocEngineCouplingRuns) {
  ScenarioSpec spec;
  spec.name = "noc_engine_smoke";
  spec.seed = kSeed;
  spec.topology = Topology::kStackNoc;
  spec.device.bits_per_symbol = 8;
  spec.device.calibrate = false;
  spec.noc.dies = 4;
  spec.noc.delivery = NocDelivery::kEngine;
  spec.noc.offered_load = 0.4;
  spec.budget.samples = 400;
  spec.budget.repro_scaled = false;

  const RunReport report = ScenarioRunner().run(spec);
  const RunPoint& p = report.points.front();
  EXPECT_GT(report.metric(p, "transfer_p"), 0.0);
  EXPECT_LE(report.metric(p, "carried_load"), 1.0);
}

TEST(ScenarioRunner, AggressorPulsesDegradeTheLink) {
  ScenarioSpec quiet = tiny_link_spec();
  quiet.budget.samples = 1500;
  ScenarioSpec loud = quiet;
  loud.aggressors = {scenario::AggressorSpec{60.0, 0.0}};  // bright co-channel pulse

  const RunReport q = ScenarioRunner().run(quiet);
  const RunReport l = ScenarioRunner().run(loud);
  // The aggressor's triggers surface as noise captures / symbol errors.
  EXPECT_GT(l.metric(l.points.front(), "noise_capture_rate") +
                l.metric(l.points.front(), "ser"),
            q.metric(q.points.front(), "noise_capture_rate") +
                q.metric(q.points.front(), "ser"));
}

TEST(ScenarioRunner, SweepCanPushSpecInvalid) {
  ScenarioSpec spec = tiny_link_spec();
  spec.topology = Topology::kWdm;
  spec.device.led.peak_power = util::Power::microwatts(2.0);
  spec.sweep = {SweepAxis::list("channels", {0.0})};  // 0 channels is invalid
  EXPECT_THROW((void)ScenarioRunner().run(spec), std::invalid_argument);
}

TEST(ScenarioReport, TableAndJsonEmit) {
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 50;
  spec.sweep = {SweepAxis::list("jitter_ps", {40.0, 80.0})};
  const RunReport report = ScenarioRunner().run(spec);

  const util::Table t = report.to_table();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), report.axis_names.size() + report.metric_names.size());

  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("tiny_link"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/scenario_test_bench.json";
  report.write_bench_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"binary\": \"scenario_tiny_link\""), std::string::npos);
  EXPECT_NE(json.find("tiny_link/jitter_ps=40"), std::string::npos);
  EXPECT_NE(json.find("\"rng_draws_per_op\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(ScenarioSeed, EnvOverrideBeatsSpecSeed) {
  ASSERT_EQ(setenv("OCI_SEED", "777", 1), 0);
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 20;
  const RunReport report = ScenarioRunner().run(spec);
  unsetenv("OCI_SEED");
  EXPECT_EQ(report.seed, 777u);

  // Garbled values fall back to the spec seed.
  ASSERT_EQ(setenv("OCI_SEED", "not-a-seed", 1), 0);
  const RunReport fallback = ScenarioRunner().run(spec);
  unsetenv("OCI_SEED");
  EXPECT_EQ(fallback.seed, kSeed);
}

TEST(ScenarioSeed, CliArgConsumedAndWins) {
  // The CLI seed must beat a pre-existing OCI_SEED -- including inside
  // a later ScenarioRunner::run(), which re-resolves from the
  // environment (the consumed value is re-exported as OCI_SEED).
  ASSERT_EQ(setenv("OCI_SEED", "555", 1), 0);
  char a0[] = "bench";
  char a1[] = "--seed=4242";
  char a2[] = "--benchmark_filter=none";
  char* argv[] = {a0, a1, a2, nullptr};
  int argc = 3;
  EXPECT_EQ(scenario::resolve_seed(7, argc, argv), 4242u);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--benchmark_filter=none");
  ScenarioSpec spec = tiny_link_spec();
  spec.budget.samples = 20;
  EXPECT_EQ(ScenarioRunner().run(spec).seed, 4242u);
  unsetenv("OCI_SEED");

  // Split form: --seed N.
  char b1[] = "--seed";
  char b2[] = "99";
  char* argv2[] = {a0, b1, b2, nullptr};
  int argc2 = 3;
  EXPECT_EQ(scenario::resolve_seed(7, argc2, argv2), 99u);
  EXPECT_EQ(argc2, 1);

  // No flag: fallback (or OCI_SEED, unset here).
  unsetenv("OCI_SEED");
  char* argv3[] = {a0, nullptr};
  int argc3 = 1;
  EXPECT_EQ(scenario::resolve_seed(7, argc3, argv3), 7u);
}

}  // namespace
