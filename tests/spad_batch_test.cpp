// Batch detection entry points and dead-time carryover.
//
// detect_into must be draw-for-draw identical to detect() while reusing
// caller-provided buffers, and the dead_until carry -- a scalar for one
// diode, a per-diode vector for the array -- must couple consecutive
// windows exactly like one long window would.
#include <gtest/gtest.h>

#include <vector>

#include "oci/spad/array.hpp"
#include "oci/spad/spad.hpp"

namespace {

using namespace oci;
using photonics::PhotonArrival;
using spad::Detection;
using spad::Spad;
using spad::SpadArray;
using spad::SpadArrayParams;
using spad::SpadParams;
using util::RngStream;
using util::Time;
using util::Wavelength;

std::vector<PhotonArrival> photon_train(int count, Time spacing, Time start = Time::zero()) {
  std::vector<PhotonArrival> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({start + spacing * static_cast<double>(i), true});
  }
  return out;
}

void expect_same_detections(const std::vector<Detection>& a, const std::vector<Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time.seconds(), b[i].time.seconds());
    EXPECT_DOUBLE_EQ(a[i].true_time.seconds(), b[i].true_time.seconds());
    EXPECT_EQ(static_cast<int>(a[i].cause), static_cast<int>(b[i].cause));
  }
}

// ---------- Spad::detect_into ----------

TEST(SpadBatch, DetectIntoMatchesDetectAndReusesBuffers) {
  SpadParams p;
  p.dcr_at_ref = util::Frequency::kilohertz(80.0);
  p.afterpulse_probability = 0.05;
  const Spad det(p, Wavelength::nanometres(480.0));
  const auto photons = photon_train(60, Time::nanoseconds(35.0));
  const Time window = Time::microseconds(2.2);

  spad::DetectScratch scratch;
  std::vector<Detection> into;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    RngStream a(seed), b(seed);
    const auto reference = det.detect(photons, Time::zero(), window, a);
    // Same scratch/out vectors reused across iterations.
    det.detect_into(photons, Time::zero(), window, b, Time::zero(), scratch, into);
    expect_same_detections(reference, into);
    // Both paths must leave the RNG in the same state.
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(SpadBatch, DeadUntilCarryoverAcrossConsecutiveWindows) {
  SpadParams p;
  p.pdp_peak = 1.0;  // every in-window photon is a candidate
  p.excess_bias = p.nominal_excess_bias;
  p.dcr_at_ref = util::Frequency::hertz(0.0);
  p.afterpulse_probability = 0.0;
  p.jitter_sigma = Time::zero();
  p.dead_time = Time::nanoseconds(40.0);
  const Spad det(p, Wavelength::nanometres(480.0));
  const Time window = Time::nanoseconds(50.0);

  RngStream rng(101);
  // Window 0: photon at 45 ns fires; blind until 85 ns.
  std::vector<PhotonArrival> w0{{Time::nanoseconds(45.0), true}};
  const auto d0 = det.detect(w0, Time::zero(), window, rng);
  ASSERT_EQ(d0.size(), 1u);
  const Time carried = d0.back().true_time + p.dead_time;

  // Window 1 [50, 100): a photon at 60 ns sits inside the carried
  // blind interval -> lost; one at 90 ns is past it -> detected.
  RngStream rng_carry(103), rng_fresh(103);
  std::vector<PhotonArrival> blind{{Time::nanoseconds(60.0), true}};
  EXPECT_TRUE(det.detect(blind, window, window, rng_carry, carried).empty());
  // The same photon fires when the previous window's avalanche is
  // (incorrectly) forgotten -- the carry is what suppresses it.
  EXPECT_EQ(det.detect(blind, window, window, rng_fresh).size(), 1u);

  std::vector<PhotonArrival> recovered{{Time::nanoseconds(90.0), true}};
  const auto past_carry = det.detect(recovered, window, window, rng_carry, carried);
  ASSERT_EQ(past_carry.size(), 1u);
  EXPECT_DOUBLE_EQ(past_carry.front().true_time.nanoseconds(), 90.0);
}

// ---------- SpadArray::detect_into + carryover ----------

SpadArrayParams quiet_array(std::size_t diodes) {
  SpadArrayParams p;
  p.diodes = diodes;
  p.fill_factor = 1.0;
  p.element.pdp_peak = 1.0;
  p.element.dcr_at_ref = util::Frequency::hertz(0.0);
  p.element.afterpulse_probability = 0.0;
  p.element.jitter_sigma = Time::zero();
  p.element.dead_time = Time::nanoseconds(40.0);
  return p;
}

TEST(SpadBatch, ArrayDetectIntoMatchesDetect) {
  SpadArrayParams p;
  p.diodes = 4;
  p.element.dcr_at_ref = util::Frequency::kilohertz(60.0);
  p.element.afterpulse_probability = 0.03;
  const SpadArray arr(p, Wavelength::nanometres(480.0));
  const auto photons = photon_train(80, Time::nanoseconds(20.0));
  const Time window = Time::microseconds(1.7);

  SpadArray::DetectScratch scratch;
  std::vector<Detection> into;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    RngStream a(seed), b(seed);
    std::vector<Time> dead_a(arr.size(), Time::zero());
    std::vector<Time> dead_b(arr.size(), Time::zero());
    const auto reference = arr.detect(photons, Time::zero(), window, a, dead_a);
    arr.detect_into(photons, Time::zero(), window, b, dead_b, scratch, into);
    expect_same_detections(reference, into);
    for (std::size_t d = 0; d < arr.size(); ++d) {
      EXPECT_DOUBLE_EQ(dead_a[d].seconds(), dead_b[d].seconds());
    }
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(SpadBatch, ArrayDeadUntilVectorCarriesAcrossWindows) {
  // One diode: the array degenerates to a single SPAD and the
  // dead_until vector must behave exactly like the scalar carry.
  const SpadArray arr(quiet_array(1), Wavelength::nanometres(480.0));
  const Time window = Time::nanoseconds(50.0);
  RngStream rng(211);
  std::vector<Time> dead(1, Time::zero());

  std::vector<PhotonArrival> w0{{Time::nanoseconds(45.0), true}};
  const auto d0 = arr.detect(w0, Time::zero(), window, rng, dead);
  ASSERT_EQ(d0.size(), 1u);
  EXPECT_DOUBLE_EQ(dead[0].nanoseconds(), 85.0);  // 45 ns + 40 ns dead

  // Carried into window 1: the 60 ns photon is blind, the 90 ns fires.
  std::vector<PhotonArrival> w1{{Time::nanoseconds(60.0), true},
                                {Time::nanoseconds(90.0), true}};
  const auto d1 = arr.detect(w1, window, window, rng, dead);
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_DOUBLE_EQ(d1.front().true_time.nanoseconds(), 90.0);
  EXPECT_DOUBLE_EQ(dead[0].nanoseconds(), 130.0);

  // A second diode absorbs the blind photon instead: no loss.
  const SpadArray pair(quiet_array(2), Wavelength::nanometres(480.0));
  RngStream rng2(223);
  std::vector<Time> dead2(2, Time::zero());
  (void)pair.detect(w0, Time::zero(), window, rng2, dead2);
  const auto d1_pair = pair.detect(w1, window, window, rng2, dead2);
  EXPECT_EQ(d1_pair.size(), 2u);
}

}  // namespace
