// Unit tests for the electrical interconnect baselines.
#include <gtest/gtest.h>

#include "oci/electrical/capacitive.hpp"
#include "oci/electrical/inductive.hpp"
#include "oci/electrical/interconnect.hpp"
#include "oci/electrical/pad.hpp"

namespace {

using namespace oci::electrical;
using oci::util::Capacitance;
using oci::util::Current;
using oci::util::Energy;
using oci::util::Inductance;
using oci::util::Length;
using oci::util::Time;
using oci::util::Voltage;

// ---------- wire-bond pad ----------

TEST(WireBondPad, EnergyPerBitIsAlphaCV2) {
  WireBondPadParams p;
  p.pad_capacitance = Capacitance::picofarads(2.0);
  p.swing = Voltage::volts(1.2);
  p.activity_factor = 0.5;
  const WireBondPad pad(p);
  EXPECT_NEAR(pad.energy_per_bit().picojoules(), 0.5 * 2.0 * 1.44, 1e-9);
}

TEST(WireBondPad, TransitionTimeRespectsBothLimits) {
  WireBondPadParams p;
  const WireBondPad pad(p);
  const double t_charge = p.pad_capacitance.farads() * p.swing.volts() / p.max_drive.amperes();
  EXPECT_GE(pad.min_transition_time().seconds(), t_charge);
  // LC quarter period with 3 nH / 2 pF ~ 121 ps.
  EXPECT_GE(pad.min_transition_time().picoseconds(), 120.0);
}

TEST(WireBondPad, MaxBitRateBelowLCLimit) {
  const WireBondPad pad(WireBondPadParams{});
  // 2 pF pad on a 3 nH bond wire cannot do 10 Gb/s NRZ.
  EXPECT_LT(pad.max_bit_rate().gigabits_per_second(), 10.0);
  EXPECT_GT(pad.max_bit_rate().megabits_per_second(), 100.0);
}

TEST(WireBondPad, SupplyCurrentGrowsLinearlyWithRate) {
  const WireBondPad pad(WireBondPadParams{});
  const auto i1 = pad.supply_current_at(oci::util::BitRate::gigabits_per_second(1.0));
  const auto i2 = pad.supply_current_at(oci::util::BitRate::gigabits_per_second(2.0));
  EXPECT_NEAR(i2.amperes() / i1.amperes(), 2.0, 1e-12);
}

TEST(WireBondPad, MoreInductanceSlowsLink) {
  WireBondPadParams slow;
  slow.bond_inductance = Inductance::nanohenries(6.0);
  WireBondPadParams fast;
  fast.bond_inductance = Inductance::nanohenries(1.0);
  EXPECT_LT(WireBondPad(slow).max_bit_rate().bits_per_second(),
            WireBondPad(fast).max_bit_rate().bits_per_second());
}

TEST(WireBondPad, FiguresPopulated) {
  const LinkFigures f = WireBondPad(WireBondPadParams{}).figures();
  EXPECT_EQ(f.name, "wire-bond pad");
  EXPECT_FALSE(f.broadcast_capable);
  EXPECT_EQ(f.max_fanout, 1u);
  EXPECT_GT(f.energy_per_bit.picojoules(), 0.0);
  EXPECT_GT(bandwidth_density_bps_per_mm2(f), 0.0);
}

TEST(WireBondPad, RejectsBadParams) {
  WireBondPadParams p;
  p.pad_capacitance = Capacitance::farads(0.0);
  EXPECT_THROW(WireBondPad{p}, std::invalid_argument);
  p = WireBondPadParams{};
  p.activity_factor = 1.5;
  EXPECT_THROW(WireBondPad{p}, std::invalid_argument);
  p = WireBondPadParams{};
  p.max_drive = Current::amperes(0.0);
  EXPECT_THROW(WireBondPad{p}, std::invalid_argument);
}

// ---------- inductive ----------

TEST(InductiveLink, CouplingSaturatesNearAndDecaysCubed) {
  InductiveLinkParams p;
  p.coil_diameter = Length::micrometres(100.0);
  const InductiveLink link(p);
  EXPECT_DOUBLE_EQ(link.coupling_at(Length::micrometres(50.0)), p.k_at_diameter);
  const double k1 = link.coupling_at(Length::micrometres(100.0));
  const double k2 = link.coupling_at(Length::micrometres(200.0));
  EXPECT_NEAR(k2 / k1, 1.0 / 8.0, 1e-9);  // (D/2D)^3
}

TEST(InductiveLink, FeasibilityAtConfiguredSeparation) {
  InductiveLinkParams p;
  p.separation = Length::micrometres(60.0);
  EXPECT_TRUE(InductiveLink(p).link_feasible());
  p.separation = Length::micrometres(500.0);
  EXPECT_FALSE(InductiveLink(p).link_feasible());
}

TEST(InductiveLink, MaxSeparationConsistent) {
  const InductiveLink link(InductiveLinkParams{});
  const Length max = link.max_separation();
  EXPECT_GE(link.coupling_at(max), link.params().min_usable_coupling * 0.999);
  EXPECT_LT(link.coupling_at(Length::metres(max.metres() * 1.1)),
            link.params().min_usable_coupling);
}

TEST(InductiveLink, PairOnlyAndEnergySum) {
  const LinkFigures f = InductiveLink(InductiveLinkParams{}).figures();
  EXPECT_FALSE(f.broadcast_capable);
  EXPECT_EQ(f.max_fanout, 1u);
  EXPECT_NEAR(f.energy_per_bit.picojoules(), 3.0, 1e-9);  // 1.5 + 1.5 pJ
}

TEST(InductiveLink, InfeasibleGeometryZeroRate) {
  InductiveLinkParams p;
  p.separation = Length::micrometres(1000.0);
  EXPECT_DOUBLE_EQ(InductiveLink(p).figures().max_bit_rate.bits_per_second(), 0.0);
}

TEST(InductiveLink, RejectsBadParams) {
  InductiveLinkParams p;
  p.coil_diameter = Length::metres(0.0);
  EXPECT_THROW(InductiveLink{p}, std::invalid_argument);
  p = InductiveLinkParams{};
  p.k_at_diameter = 1.5;
  EXPECT_THROW(InductiveLink{p}, std::invalid_argument);
}

// ---------- capacitive ----------

TEST(CapacitiveLink, ParallelPlateFormula) {
  CapacitiveLinkParams p;
  p.plate_side = Length::micrometres(20.0);
  p.gap = Length::micrometres(1.0);
  const CapacitiveLink link(p);
  // C = e0 * A / d = 8.854e-12 * 400e-12 / 1e-6 ~ 3.54 fF.
  EXPECT_NEAR(link.coupling_capacitance().femtofarads(), 3.54, 0.05);
}

TEST(CapacitiveLink, CouplingInverseWithGap) {
  const CapacitiveLink link(CapacitiveLinkParams{});
  const double c1 = link.coupling_at(Length::micrometres(1.0)).farads();
  const double c2 = link.coupling_at(Length::micrometres(2.0)).farads();
  EXPECT_NEAR(c1 / c2, 2.0, 1e-9);
}

TEST(CapacitiveLink, FeasibleAtMicronGapOnly) {
  CapacitiveLinkParams p;
  EXPECT_TRUE(CapacitiveLink(p).link_feasible());
  p.gap = Length::micrometres(10.0);
  EXPECT_FALSE(CapacitiveLink(p).link_feasible());
}

TEST(CapacitiveLink, MaxGapMatchesThreshold) {
  const CapacitiveLink link(CapacitiveLinkParams{});
  const Length g = link.max_gap();
  EXPECT_NEAR(link.coupling_at(g).farads(), link.params().min_usable_coupling.farads(),
              link.params().min_usable_coupling.farads() * 1e-9);
}

TEST(CapacitiveLink, SubPicojoulePerBit) {
  const CapacitiveLink link(CapacitiveLinkParams{});
  EXPECT_LT(link.energy_per_bit().picojoules(), 1.0);  // Drost-class efficiency
  EXPECT_GT(link.energy_per_bit().femtojoules(), 10.0);
}

TEST(CapacitiveLink, PairOnly) {
  const LinkFigures f = CapacitiveLink(CapacitiveLinkParams{}).figures();
  EXPECT_FALSE(f.broadcast_capable);
  EXPECT_EQ(f.max_fanout, 1u);
}

TEST(CapacitiveLink, RejectsBadParams) {
  CapacitiveLinkParams p;
  p.gap = Length::metres(0.0);
  EXPECT_THROW(CapacitiveLink{p}, std::invalid_argument);
  p = CapacitiveLinkParams{};
  p.relative_permittivity = 0.5;
  EXPECT_THROW(CapacitiveLink{p}, std::invalid_argument);
}

// ---------- cross-baseline sanity ----------

TEST(Baselines, PadIsTheEnergyHog) {
  const auto pad = WireBondPad(WireBondPadParams{}).figures();
  const auto ind = InductiveLink(InductiveLinkParams{}).figures();
  const auto cap = CapacitiveLink(CapacitiveLinkParams{}).figures();
  // Proximity < inductive < pad in energy/bit, the literature ordering.
  EXPECT_LT(cap.energy_per_bit.joules(), ind.energy_per_bit.joules());
  EXPECT_LT(ind.energy_per_bit.joules(), pad.energy_per_bit.joules() * 10.0);
  // None of the electrical options can broadcast.
  EXPECT_FALSE(pad.broadcast_capable || ind.broadcast_capable || cap.broadcast_capable);
}

}  // namespace
