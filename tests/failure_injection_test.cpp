// Failure injection: degrade or kill individual hardware elements and
// check the system's documented degradation story rather than silent
// corruption.
#include <gtest/gtest.h>

#include <limits>

#include "oci/link/optical_link.hpp"
#include "oci/link/rs_link.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/spec.hpp"
#include "oci/spad/array.hpp"
#include "oci/util/random.hpp"
#include "support/stat_assert.hpp"

using namespace oci;
using util::RngStream;
using util::Time;

// ---------- dead diode in a SPAD array ----------

TEST(FailureInjection, ArrayToleratesOnePermanentlyDeadDiode) {
  spad::SpadArrayParams p;
  p.diodes = 4;
  p.fill_factor = 1.0;
  p.element.pdp_peak = 0.999;
  p.element.dcr_at_ref = util::Frequency::hertz(0.0);
  p.element.afterpulse_probability = 0.0;
  p.element.jitter_sigma = Time::zero();
  p.element.dead_time = Time::nanoseconds(40.0);
  const spad::SpadArray arr(p, util::Wavelength::nanometres(480.0));
  RngStream rng(443);

  std::vector<photonics::PhotonArrival> photons;
  for (int i = 0; i < 200; ++i) photons.push_back({Time::nanoseconds(15.0 * i), true});

  // Diode 0 never recovers: the load balancer must route around it.
  std::vector<Time> dead(4, Time::zero());
  dead[0] = Time::seconds(std::numeric_limits<double>::max());
  const auto dets = arr.detect(photons, Time::zero(), Time::microseconds(3.01), rng, dead);
  // Three live diodes with 40 ns recovery against 15 ns arrivals still
  // catch the overwhelming majority.
  EXPECT_GT(dets.size(), 160u);
  EXPECT_EQ(dead[0].seconds(), std::numeric_limits<double>::max());
}

TEST(FailureInjection, AllDiodesDeadDetectsNothing) {
  spad::SpadArrayParams p;
  p.diodes = 3;
  const spad::SpadArray arr(p, util::Wavelength::nanometres(480.0));
  RngStream rng(449);
  std::vector<photonics::PhotonArrival> photons{{Time::nanoseconds(5.0), true}};
  std::vector<Time> dead(3, Time::seconds(std::numeric_limits<double>::max()));
  const auto dets = arr.detect(photons, Time::zero(), Time::microseconds(1.0), rng, dead);
  EXPECT_TRUE(dets.empty());
}

// ---------- transmitter death mid-stream ----------

TEST(FailureInjection, DarkTransmitterYieldsErasuresNotGarbage) {
  // An LED that emits nothing (driver failure): every window is an
  // erasure, the stats say so, and the decoded stream is the documented
  // all-zero erasure symbol -- not random garbage.
  link::OpticalLinkConfig cfg;
  cfg.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  cfg.bits_per_symbol = 6;
  cfg.led.peak_power = util::Power::watts(0.0);
  cfg.spad.dcr_at_ref = util::Frequency::hertz(0.0);
  cfg.spad.afterpulse_probability = 0.0;
  cfg.calibrate = false;  // nothing to train on a dark transmitter
  RngStream rng(457);
  const link::OpticalLink link(cfg, rng);
  RngStream tx(461);
  const auto run = link.transmit({7, 13, 21, 42}, tx);
  EXPECT_EQ(run.stats.erasures, 4u);
  for (std::size_t i = 0; i < run.decoded.size(); ++i) {
    EXPECT_EQ(run.decoded[i], 0u);
    EXPECT_TRUE(run.erased[i]);
  }
}

TEST(FailureInjection, RsLinkSurvivesBurstOfDeadWindows) {
  // The RS layer's erasure handling covers a short transmitter brownout
  // (a run of no-detection windows) within one block's parity budget.
  link::OpticalLinkConfig cfg;
  cfg.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  cfg.bits_per_symbol = 8;
  cfg.channel_transmittance = 0.8;
  cfg.led.peak_power = util::Power::microwatts(50.0);
  cfg.spad.jitter_sigma = Time::zero();
  cfg.spad.dcr_at_ref = util::Frequency::hertz(0.0);
  cfg.spad.afterpulse_probability = 0.0;
  cfg.calibration_samples = 30000;
  RngStream rng(463);
  const link::OpticalLink link(cfg, rng);

  link::RsLinkConfig rs_cfg;
  rs_cfg.block_data_bytes = 16;
  rs_cfg.parity_bytes = 8;
  const link::RsLink rs(link, rs_cfg);

  // Healthy transfer first (sanity).
  RngStream tx(467);
  const std::vector<std::uint8_t> payload(12, 0x3C);
  const auto healthy = rs.transfer(payload, tx);
  ASSERT_TRUE(healthy.payload.has_value());

  // Simulate the brownout at the RS layer: erase a run of 7 coded
  // bytes (within the parity-8 budget) and decode directly.
  const modulation::ReedSolomon codec(16, 8);
  std::vector<std::uint8_t> block(16, 0x3C);
  auto coded = codec.encode(block);
  std::vector<std::size_t> erasures;
  for (std::size_t i = 3; i < 10; ++i) {
    coded[i] = 0;
    erasures.push_back(i);
  }
  const auto result = codec.decode(coded, erasures);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->data, block);
}

// ---------- declarative fault.* twins of the direct wirings ----------
//
// The direct hand-wired injections above stay as oracles; the fault.*
// scenario axes must reproduce their physics through the declarative
// path (deterministic realisation + runner plumbing).

namespace {

/// Fast jitterless point-to-point spec for the scenario-path twins.
scenario::ScenarioSpec fault_twin_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "fault_twin";
  spec.seed = 503;
  spec.device.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.device.spad.dcr_at_ref = util::Frequency::hertz(0.0);
  spec.device.spad.afterpulse_probability = 0.0;
  spec.budget.samples = 1500;
  spec.budget.repro_scaled = false;
  return spec;
}

}  // namespace

TEST(FailureInjection, ScenarioDarkWindowsMatchDarkTransmitterOracle) {
  // fault.dark_window_probability = 1 is the declarative twin of the
  // dark-transmitter oracle above: with no dark counts every window is
  // an erasure, never garbage.
  scenario::ScenarioSpec spec = fault_twin_spec();
  spec.fault.dark_window_probability = 1.0;
  const scenario::RunReport r = scenario::ScenarioRunner().run(spec);
  const scenario::RunPoint& p = r.points.front();
  EXPECT_DOUBLE_EQ(r.metric(p, "erasure_rate"), 1.0);
  EXPECT_DOUBLE_EQ(r.metric(p, "noise_capture_rate"), 0.0);

  // A partial brownout erases the dark fraction of windows.
  scenario::ScenarioSpec partial = fault_twin_spec();
  partial.fault.dark_window_probability = 0.3;
  const scenario::RunReport rp = scenario::ScenarioRunner().run(partial);
  const scenario::RunPoint& pp = rp.points.front();
  const auto erasures = static_cast<std::uint64_t>(
      rp.metric(pp, "erasure_rate") * static_cast<double>(pp.samples) + 0.5);
  EXPECT_RATE_NEAR(erasures, pp.samples, 0.3, 1e-4);
}

TEST(FailureInjection, ScenarioDeadPixelsMatchPdpScaledOracle) {
  // Dead pixels thin the detected photon stream: the declarative fold
  // (pdp_peak x live fraction) must be statistically indistinguishable
  // from hand-scaling the PDP on a direct link, at an operating point
  // starved enough for erasures to move.
  scenario::ScenarioSpec spec = fault_twin_spec();
  spec.device.led.peak_power = util::Power::nanowatts(20.0);
  spec.fault.dead_pixel_fraction = 0.5;
  spec.fault.array_pixels = 64;
  const scenario::RunReport r = scenario::ScenarioRunner().run(spec);
  const scenario::RunPoint& p = r.points.front();
  const auto scenario_erasures = static_cast<std::uint64_t>(
      r.metric(p, "erasure_rate") * static_cast<double>(p.samples) + 0.5);

  link::OpticalLinkConfig direct = spec.device;
  direct.spad.pdp_peak *= 0.5;  // the same Poisson thinning, by hand
  RngStream process(521);
  const link::OpticalLink link(direct, process);
  RngStream tx(523);
  const link::LinkRunStats stats = link.measure(1500, tx);

  EXPECT_RATES_CONSISTENT(scenario_erasures, p.samples, stats.erasures,
                          stats.symbols_sent, 1e-4);
  // And the degradation is real: the faulted link erases more than a
  // healthy one at the same starved operating point.
  scenario::ScenarioSpec healthy = spec;
  healthy.fault = {};
  const scenario::RunReport h = scenario::ScenarioRunner().run(healthy);
  EXPECT_GT(r.metric(p, "erasure_rate"),
            h.metric(h.points.front(), "erasure_rate"));
}

TEST(FailureInjection, ScenarioTdcDriftDegradesAndRecalibrationRecovers) {
  // Drifting the delay line out from under the trained calibration
  // raises SER; the documented response (retrain at the operating
  // point) pulls it back down and is counted in the report.
  scenario::ScenarioSpec drifted = fault_twin_spec();
  // 8 bits/symbol: ~208 ps slots, where a 40 C drift of the 52 ps
  // delay line (2e-3/K) walks detections across slot boundaries.
  drifted.device.bits_per_symbol = 8;
  drifted.device.calibrate = true;
  drifted.device.calibration_samples = 3000;
  drifted.fault.tdc_drift_c = 40.0;
  drifted.fault.recalibrate = false;
  const scenario::RunReport d = scenario::ScenarioRunner().run(drifted);

  scenario::ScenarioSpec recovered = drifted;
  recovered.fault.recalibrate = true;
  const scenario::RunReport rec = scenario::ScenarioRunner().run(recovered);

  const double drifted_ser = d.metric(d.points.front(), "ser");
  const double recovered_ser = rec.metric(rec.points.front(), "ser");
  EXPECT_LT(recovered_ser, drifted_ser);
  EXPECT_DOUBLE_EQ(d.metric(d.points.front(), "recalibrations"), 0.0);
  EXPECT_GE(rec.metric(rec.points.front(), "recalibrations"), 1.0);
}

// ---------- receiver clock failure ----------

TEST(FailureInjection, SaturatedBackgroundStillNeverDeliversCorruptFrames) {
  // Megahertz-class ambient flood: the link may lose every frame, but
  // the CRC layer must not pass garbage.
  link::OpticalLinkConfig cfg;
  cfg.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  cfg.bits_per_symbol = 8;
  cfg.led.peak_power = util::Power::nanowatts(5.0);  // starved signal
  cfg.background_rate = util::Frequency::megahertz(50.0);
  cfg.calibration_samples = 20000;
  RngStream rng(479);
  const link::OpticalLink link(cfg, rng);
  RngStream tx(487);
  modulation::Frame f;
  f.payload = {1, 2, 3, 4, 5};
  int delivered_wrong = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = link.transmit_frame(f, tx);
    if (r.frame && r.frame->payload != f.payload) ++delivered_wrong;
  }
  EXPECT_EQ(delivered_wrong, 0);
}
