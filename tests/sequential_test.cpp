// Unit tests for the adaptive-precision statistics layer
// (oci/analysis/sequential.hpp): Wilson and Wald intervals against
// known values, the streaming rate/mean accumulators, and the stopping
// rules that drive ScenarioRunner's chunked sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "oci/analysis/sequential.hpp"

namespace {

using oci::analysis::Estimate;
using oci::analysis::MeanAccumulator;
using oci::analysis::RateAccumulator;
using oci::analysis::StoppingRule;
using oci::analysis::wald_estimate;
using oci::analysis::wilson_estimate;

TEST(WilsonEstimate, MatchesKnownValues) {
  // 50/100 at 95%: the textbook Wilson interval [0.4038, 0.5962].
  const Estimate e = wilson_estimate(50.0, 100);
  EXPECT_DOUBLE_EQ(e.value, 0.5);
  EXPECT_NEAR(e.ci_low, 0.4038, 5e-4);
  EXPECT_NEAR(e.ci_high, 0.5962, 5e-4);
  EXPECT_EQ(e.n_samples, 100u);
  EXPECT_NEAR(e.half_width(), 0.0962, 5e-4);
}

TEST(WilsonEstimate, ZeroSuccessesKeepInformativeUpperBound) {
  // p-hat = 0: the interval is [0, z^2/(n+z^2)] -- nonzero width, the
  // whole point of preferring Wilson for rare events.
  const Estimate e = wilson_estimate(0.0, 100);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.ci_low, 0.0);
  EXPECT_NEAR(e.ci_high, 3.8416 / 103.8416, 1e-4);
}

TEST(WilsonEstimate, HandlesEdgeCases) {
  const Estimate empty = wilson_estimate(0.0, 0);
  EXPECT_EQ(empty.n_samples, 0u);
  EXPECT_DOUBLE_EQ(empty.half_width(), 0.0);

  // Fractional successes (a rate folded over an approximate trial
  // count, e.g. BER per symbol) stay well-defined.
  const Estimate frac = wilson_estimate(2.5, 1000);
  EXPECT_DOUBLE_EQ(frac.value, 0.0025);
  EXPECT_GT(frac.ci_high, frac.value);
  EXPECT_LT(frac.ci_low, frac.value);
  EXPECT_GE(frac.ci_low, 0.0);

  // All successes: upper bound pinned at 1.
  const Estimate full = wilson_estimate(100.0, 100);
  EXPECT_DOUBLE_EQ(full.ci_high, 1.0);
  EXPECT_NEAR(full.ci_low, 1.0 - 3.8416 / 103.8416, 1e-4);
}

TEST(WaldEstimate, MatchesKnownValues) {
  // 50/100 at 95%: 0.5 +/- 1.96 * 0.05.
  const Estimate e = wald_estimate(50.0, 100);
  EXPECT_DOUBLE_EQ(e.value, 0.5);
  EXPECT_NEAR(e.ci_low, 0.402, 1e-3);
  EXPECT_NEAR(e.ci_high, 0.598, 1e-3);
}

TEST(WaldEstimate, DegeneratesAtTheBoundary) {
  // The known Wald failure mode: zero width at p-hat = 0.
  const Estimate e = wald_estimate(0.0, 100);
  EXPECT_DOUBLE_EQ(e.half_width(), 0.0);
}

TEST(RateAccumulator, PoolsChunkCounts) {
  RateAccumulator acc;
  acc.add(0.1, 1000);
  acc.add(0.3, 1000);
  EXPECT_EQ(acc.trials(), 2000u);
  EXPECT_DOUBLE_EQ(acc.successes(), 400.0);
  EXPECT_DOUBLE_EQ(acc.rate(), 0.2);

  const Estimate pooled = acc.wilson();
  const Estimate direct = wilson_estimate(400.0, 2000);
  EXPECT_DOUBLE_EQ(pooled.value, direct.value);
  EXPECT_DOUBLE_EQ(pooled.ci_low, direct.ci_low);
  EXPECT_DOUBLE_EQ(pooled.ci_high, direct.ci_high);

  const Estimate wald = acc.wald();
  EXPECT_NEAR(wald.half_width(), 1.96 * std::sqrt(0.2 * 0.8 / 2000.0), 1e-9);
}

TEST(RateAccumulator, EmptyIsSafe) {
  const RateAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.rate(), 0.0);
  EXPECT_EQ(acc.wilson().n_samples, 0u);
}

TEST(MeanAccumulator, BatchMeansInterval) {
  MeanAccumulator acc;
  for (const double m : {1.0, 2.0, 3.0, 4.0}) acc.add(m, 100);
  EXPECT_EQ(acc.chunks(), 4u);
  EXPECT_EQ(acc.samples(), 400u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);

  const Estimate e = acc.interval();
  EXPECT_EQ(e.n_samples, 400u);
  // stddev({1,2,3,4}) = sqrt(5/3); margin = z * stddev / sqrt(4).
  const double margin = 1.96 * std::sqrt(5.0 / 3.0) / 2.0;
  EXPECT_NEAR(e.ci_low, 2.5 - margin, 1e-9);
  EXPECT_NEAR(e.ci_high, 2.5 + margin, 1e-9);
}

TEST(MeanAccumulator, SingleChunkHasNoSpreadInformation) {
  MeanAccumulator acc;
  acc.add(7.25, 500);
  const Estimate e = acc.interval();
  EXPECT_DOUBLE_EQ(e.value, 7.25);
  EXPECT_DOUBLE_EQ(e.half_width(), 0.0);
  EXPECT_EQ(e.n_samples, 500u);
}

// -- Reconstruction edge cases (result store / report merge path) -------

TEST(RateAccumulator, FromCountsSanitizesGarbledState) {
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // A garbled success count reads as zero successes over the recorded
  // trials -- the interval stays finite instead of poisoning merges.
  RateAccumulator garbled = RateAccumulator::from_counts(nan, 100);
  EXPECT_EQ(garbled.trials(), 100u);
  EXPECT_DOUBLE_EQ(garbled.successes(), 0.0);
  const Estimate e = garbled.wilson();
  EXPECT_TRUE(std::isfinite(e.ci_low));
  EXPECT_TRUE(std::isfinite(e.ci_high));
  EXPECT_GE(e.ci_high, e.ci_low);

  // Negative counts (impossible for a binomial) clamp to zero too.
  const RateAccumulator negative = RateAccumulator::from_counts(-3.0, 10);
  EXPECT_DOUBLE_EQ(negative.rate(), 0.0);

  // The sanitized state merges like any other accumulator.
  RateAccumulator pooled = RateAccumulator::from_counts(5.0, 10);
  pooled.merge(garbled);
  EXPECT_EQ(pooled.trials(), 110u);
  EXPECT_TRUE(std::isfinite(pooled.rate()));
  EXPECT_DOUBLE_EQ(pooled.successes(), 5.0);
}

TEST(RateAccumulator, WilsonTreatsNonFiniteSuccessesAsZero) {
  // Direct estimator call, not just the accumulator path: std::clamp
  // propagates NaN, so the estimators need their own finite guard.
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {std::nan(""), inf, -inf}) {
    const Estimate w = wilson_estimate(bad, 50);
    EXPECT_TRUE(std::isfinite(w.value)) << bad;
    EXPECT_TRUE(std::isfinite(w.ci_low) && std::isfinite(w.ci_high)) << bad;
    const Estimate a = wald_estimate(bad, 50);
    EXPECT_TRUE(std::isfinite(a.ci_low) && std::isfinite(a.ci_high)) << bad;
  }
}

TEST(MeanAccumulator, FromStateWithZeroChunksIsTheEmptyAccumulator) {
  // A zero-sample point round-tripped through a report legitimately
  // serializes zero chunks; reconstruction must hand back the EMPTY
  // accumulator, not moments that NaN every merge they touch.
  const MeanAccumulator empty = MeanAccumulator::from_state(0, 0.0, 0.0, 0);
  EXPECT_EQ(empty.chunks(), 0u);
  EXPECT_EQ(empty.samples(), 0u);
  const Estimate e = empty.interval();
  EXPECT_TRUE(std::isfinite(e.value));
  EXPECT_DOUBLE_EQ(e.half_width(), 0.0);

  // Merging the empty reconstruction into live state is a no-op.
  MeanAccumulator live;
  live.add(2.0, 100);
  live.add(4.0, 100);
  const Estimate before = live.interval();
  live.merge(empty);
  const Estimate after = live.interval();
  EXPECT_DOUBLE_EQ(after.value, before.value);
  EXPECT_DOUBLE_EQ(after.ci_low, before.ci_low);
  EXPECT_DOUBLE_EQ(after.ci_high, before.ci_high);
  EXPECT_EQ(after.n_samples, before.n_samples);
}

TEST(MeanAccumulator, FromStateSanitizesGarbledMoments) {
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // Non-finite moments reconstruct as empty rather than contagious NaN.
  for (const MeanAccumulator acc : {MeanAccumulator::from_state(3, nan, 1.0, 300),
                                    MeanAccumulator::from_state(3, 1.0, nan, 300)}) {
    EXPECT_EQ(acc.chunks(), 0u);
    EXPECT_TRUE(std::isfinite(acc.interval().value));
  }

  // A (numerically impossible) negative M2 clamps to zero spread: the
  // interval collapses to the mean instead of widening to NaN.
  const MeanAccumulator clamped = MeanAccumulator::from_state(4, 2.5, -1e-9, 400);
  EXPECT_EQ(clamped.chunks(), 4u);
  const Estimate e = clamped.interval();
  EXPECT_DOUBLE_EQ(e.value, 2.5);
  EXPECT_TRUE(std::isfinite(e.ci_low) && std::isfinite(e.ci_high));
  EXPECT_DOUBLE_EQ(e.half_width(), 0.0);
}

TEST(StoppingRule, AbsoluteHalfWidthTarget) {
  StoppingRule rule;
  rule.target_half_width = 0.01;
  EXPECT_TRUE(rule.should_stop({0.2, 0.195, 0.205, 1000}));   // h = 0.005
  EXPECT_FALSE(rule.should_stop({0.2, 0.15, 0.25, 1000}));    // h = 0.05
}

TEST(StoppingRule, RelativeTargetNeverFiresAtZero) {
  StoppingRule rule;
  rule.target_relative = 0.1;
  EXPECT_TRUE(rule.should_stop({0.5, 0.48, 0.52, 1000}));  // h = 0.02 <= 0.05
  EXPECT_FALSE(rule.should_stop({0.5, 0.4, 0.6, 1000}));   // h = 0.10 > 0.05
  // A zero estimate has no scale for a relative rule: keep sampling.
  EXPECT_FALSE(rule.should_stop({0.0, 0.0, 0.004, 1000}));
}

TEST(StoppingRule, RareEventUpperBoundStops) {
  StoppingRule rule;
  rule.stop_below = 0.01;
  EXPECT_TRUE(rule.should_stop({0.0, 0.0, 0.005, 1000}));   // confidently below
  EXPECT_FALSE(rule.should_stop({0.0, 0.0, 0.02, 1000}));   // still ambiguous
}

TEST(StoppingRule, BudgetBoundsBracketTheTargets) {
  StoppingRule rule;
  rule.target_half_width = 1.0;  // trivially met
  rule.min_samples = 500;
  EXPECT_FALSE(rule.should_stop({0.5, 0.5, 0.5, 100}));  // too early
  EXPECT_TRUE(rule.should_stop({0.5, 0.5, 0.5, 500}));

  StoppingRule cap;
  cap.target_half_width = 1e-12;  // unreachable
  cap.max_samples = 1000;
  EXPECT_FALSE(cap.should_stop({0.5, 0.0, 1.0, 999}));
  EXPECT_TRUE(cap.should_stop({0.5, 0.0, 1.0, 1000}));  // budget exhausted
}

TEST(StoppingRule, NoTargetNoCapStopsImmediately) {
  // A rule with nothing to wait for must not sample forever.
  const StoppingRule rule;
  EXPECT_FALSE(rule.has_target());
  EXPECT_TRUE(rule.should_stop({0.5, 0.0, 1.0, 1}));
}

TEST(StoppingRule, TargetsComposeWithOr) {
  StoppingRule rule;
  rule.target_half_width = 0.001;  // not met below
  rule.stop_below = 0.05;          // met
  EXPECT_TRUE(rule.precision_met({0.0, 0.0, 0.01, 1000}));
}

}  // namespace
