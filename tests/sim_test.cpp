// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "oci/sim/component.hpp"
#include "oci/sim/scheduler.hpp"
#include "oci/sim/trace.hpp"

namespace {

using oci::sim::Component;
using oci::sim::Scheduler;
using oci::sim::Trace;
using oci::util::Time;

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::nanoseconds(30.0), [&] { order.push_back(3); });
  s.schedule_at(Time::nanoseconds(10.0), [&] { order.push_back(1); });
  s.schedule_at(Time::nanoseconds(20.0), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now().nanoseconds(), 30.0);
}

TEST(Scheduler, FifoTieBreakAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Time::nanoseconds(10.0), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  Time seen = Time::zero();
  s.schedule_in(Time::nanoseconds(5.0), [&] {
    seen = s.now();
    s.schedule_in(Time::nanoseconds(5.0), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(seen.nanoseconds(), 10.0);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::nanoseconds(1.0), [&] { ++fired; });
  s.schedule_at(Time::nanoseconds(2.0), [&] { ++fired; });
  s.schedule_at(Time::nanoseconds(10.0), [&] { ++fired; });
  EXPECT_EQ(s.run_until(Time::nanoseconds(5.0)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now().nanoseconds(), 5.0);  // time advances to horizon
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, EventAtExactHorizonFires) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(Time::nanoseconds(5.0), [&] { fired = true; });
  s.run_until(Time::nanoseconds(5.0));
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const auto id = s.schedule_at(Time::nanoseconds(5.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel reports failure
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelUnknownIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(0));
  EXPECT_FALSE(s.cancel(12345));
}

TEST(Scheduler, CannotScheduleInPast) {
  Scheduler s;
  s.schedule_at(Time::nanoseconds(10.0), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(Time::nanoseconds(5.0), [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(s.now(), Scheduler::Callback{}), std::invalid_argument);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_in(Time::nanoseconds(1.0), chain);
  };
  s.schedule_at(Time::zero(), chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(s.now().nanoseconds(), 9.0);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::nanoseconds(1.0), [&] { ++fired; });
  s.schedule_at(Time::nanoseconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_in(Time::nanoseconds(i + 1.0), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, PendingExcludesCancelled) {
  Scheduler s;
  const auto a = s.schedule_at(Time::nanoseconds(1.0), [] {});
  s.schedule_at(Time::nanoseconds(2.0), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Trace, RecordAndQuery) {
  Trace tr;
  tr.record(Time::nanoseconds(1.0), "clk", 1.0);
  tr.record(Time::nanoseconds(2.0), "clk", 0.0);
  tr.record(Time::nanoseconds(3.0), "data", 42.0);
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.for_signal("clk").size(), 2u);
  EXPECT_DOUBLE_EQ(tr.last_value("clk", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(tr.last_value("data", -1.0), 42.0);
  EXPECT_DOUBLE_EQ(tr.last_value("missing", -1.0), -1.0);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Component, BindsToScheduler) {
  Scheduler s;
  class Blinker : public Component {
   public:
    using Component::Component;
    void start() {
      scheduler().schedule_in(Time::nanoseconds(5.0), [this] { ticks++; });
    }
    int ticks = 0;
  };
  Blinker b(s, "blinker");
  EXPECT_EQ(b.name(), "blinker");
  b.start();
  s.run();
  EXPECT_EQ(b.ticks, 1);
  EXPECT_DOUBLE_EQ(b.now().nanoseconds(), 5.0);
}

}  // namespace
