// Tests for the multipulse-PPM codec (the SPAD-array-enabled scheme).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "oci/modulation/mppm.hpp"

using namespace oci;
using modulation::MppmCodec;
using modulation::MppmConfig;
using util::Time;

TEST(Mppm, ConstrainedCountMatchesBruteForce) {
  // Enumerate all w-subsets of n slots with pairwise distance >= sep
  // and compare with the closed form.
  for (std::uint64_t n : {6ull, 9ull, 12ull}) {
    for (unsigned w : {2u, 3u}) {
      for (std::uint64_t sep : {1ull, 2ull, 3ull}) {
        std::uint64_t brute = 0;
        std::vector<std::uint64_t> idx(w);
        // Odometer over ascending subsets.
        const auto valid = [&](const std::vector<std::uint64_t>& v) {
          for (std::size_t i = 1; i < v.size(); ++i) {
            if (v[i] < v[i - 1] + sep) return false;
          }
          return true;
        };
        std::vector<std::uint64_t> v(w);
        for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
          if (static_cast<unsigned>(__builtin_popcountll(mask)) != w) continue;
          std::size_t j = 0;
          for (std::uint64_t b = 0; b < n; ++b) {
            if (mask & (1ull << b)) v[j++] = b;
          }
          if (valid(v)) ++brute;
        }
        EXPECT_EQ(modulation::constrained_codewords(n, w, sep), brute)
            << "n=" << n << " w=" << w << " sep=" << sep;
      }
    }
  }
}

TEST(Mppm, RejectsBadGeometry) {
  MppmConfig c;
  c.slots = 0;
  EXPECT_THROW(MppmCodec{c}, std::invalid_argument);
  c = MppmConfig{};
  c.pulses = 0;
  EXPECT_THROW(MppmCodec{c}, std::invalid_argument);
  c = MppmConfig{};
  c.min_slot_separation = 0;
  EXPECT_THROW(MppmCodec{c}, std::invalid_argument);
  c = MppmConfig{};
  c.slots = 3;
  c.pulses = 2;
  c.min_slot_separation = 3;  // only one codeword {0, 3} doesn't exist... none fit
  EXPECT_THROW(MppmCodec{c}, std::invalid_argument);
}

TEST(Mppm, BitsBeatSinglePulsePpmAtLargeN) {
  // 64 slots: PPM carries 6 bits; 2-pulse MPPM carries log2(C(64,2)) =
  // log2(2016) -> 10 bits in the same window.
  MppmConfig c;
  c.slots = 64;
  c.pulses = 2;
  const MppmCodec codec(c);
  EXPECT_EQ(codec.codeword_count(), 2016u);
  EXPECT_EQ(codec.bits_per_symbol(), 10u);
}

TEST(Mppm, SeparationRuleCostsBits) {
  MppmConfig c;
  c.slots = 64;
  c.pulses = 2;
  c.min_slot_separation = 8;  // array recovery = 8 slots
  const MppmCodec codec(c);
  // C(64 - 7, 2) = C(57, 2) = 1596 -> still 10 bits.
  EXPECT_EQ(codec.codeword_count(), 1596u);
  EXPECT_EQ(codec.bits_per_symbol(), 10u);
}

TEST(Mppm, RoundTripsEverySymbol) {
  MppmConfig c;
  c.slots = 24;
  c.pulses = 3;
  c.min_slot_separation = 2;
  const MppmCodec codec(c);
  std::set<std::vector<std::uint64_t>> seen;
  for (std::uint64_t s = 0; s < (1ull << codec.bits_per_symbol()); ++s) {
    const auto slots = codec.encode(s);
    ASSERT_EQ(slots.size(), 3u);
    // Ascending with the separation honoured.
    for (std::size_t i = 1; i < slots.size(); ++i) {
      EXPECT_GE(slots[i], slots[i - 1] + 2);
    }
    EXPECT_LT(slots.back(), 24u);
    EXPECT_TRUE(seen.insert(slots).second) << "duplicate codeword for symbol " << s;
    EXPECT_EQ(codec.decode(slots), s);
  }
}

TEST(Mppm, DecodeValidatesInput) {
  MppmConfig c;
  c.slots = 16;
  c.pulses = 2;
  c.min_slot_separation = 2;
  const MppmCodec codec(c);
  EXPECT_THROW((void)codec.decode({3}), std::invalid_argument);           // wrong count
  EXPECT_THROW((void)codec.decode({3, 16}), std::invalid_argument);      // out of range
  EXPECT_THROW((void)codec.decode({3, 4}), std::invalid_argument);       // separation
}

TEST(Mppm, TimeRoundTrip) {
  MppmConfig c;
  c.slots = 32;
  c.pulses = 2;
  c.slot_width = Time::nanoseconds(1.5);
  const MppmCodec codec(c);
  for (std::uint64_t s : {0ull, 17ull, 200ull}) {
    if (s >= (1ull << codec.bits_per_symbol())) continue;
    const auto times = codec.encode_times(s);
    EXPECT_EQ(codec.decode_times(times), s);
  }
  EXPECT_DOUBLE_EQ(codec.symbol_span().nanoseconds(), 48.0);
}

TEST(Mppm, TimeDecodeClampsOutOfRange) {
  MppmConfig c;
  c.slots = 8;
  c.pulses = 2;
  const MppmCodec codec(c);
  // A pulse past the window clamps to the last slot; the pair {0, 7}.
  const std::uint64_t expected = codec.decode({0, 7});
  EXPECT_EQ(codec.decode_times({Time::nanoseconds(0.2), Time::nanoseconds(99.0)}),
            expected);
}

TEST(Mppm, SinglePulseDegeneratesToPpm) {
  MppmConfig c;
  c.slots = 32;
  c.pulses = 1;
  const MppmCodec codec(c);
  EXPECT_EQ(codec.codeword_count(), 32u);
  EXPECT_EQ(codec.bits_per_symbol(), 5u);
  for (std::uint64_t s = 0; s < 32; ++s) {
    EXPECT_EQ(codec.encode(s), std::vector<std::uint64_t>{s});
  }
}
