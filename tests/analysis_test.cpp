// Unit tests for the reporting/analysis helpers.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "oci/analysis/report.hpp"

namespace {

using namespace oci::analysis;

TEST(Report, BannerContainsIdAndSeed) {
  std::ostringstream os;
  print_banner(os, "Figure 3", "TDC DNL", 42);
  const std::string s = os.str();
  EXPECT_NE(s.find("Figure 3"), std::string::npos);
  EXPECT_NE(s.find("TDC DNL"), std::string::npos);
  EXPECT_NE(s.find("seed = 42"), std::string::npos);
}

TEST(AsciiProfile, RendersOneRowPerSample) {
  std::ostringstream os;
  const std::vector<double> v{0.5, -0.5, 0.0, 1.0};
  ascii_profile(os, v, 1.0, 48, 10);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(os.str().find('#'), std::string::npos);
  EXPECT_NE(os.str().find('|'), std::string::npos);
}

TEST(AsciiProfile, DecimatesLongProfiles) {
  std::ostringstream os;
  std::vector<double> v(1000, 0.1);
  ascii_profile(os, v, 1.0, 50, 10);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 51u);
}

TEST(AsciiProfile, EmptyAndBadScaleAreNoops) {
  std::ostringstream os;
  ascii_profile(os, {}, 1.0);
  EXPECT_TRUE(os.str().empty());
  const std::vector<double> v{1.0};
  ascii_profile(os, v, 0.0);
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiShademap, RendersGrid) {
  std::ostringstream os;
  const std::vector<std::vector<double>> field{{0.0, 1.0}, {2.0, 3.0}};
  ascii_shademap(os, field, {"r0", "r1"}, {"c0", "c1"});
  const std::string s = os.str();
  EXPECT_NE(s.find("r0"), std::string::npos);
  EXPECT_NE(s.find("r1"), std::string::npos);
  EXPECT_NE(s.find('@'), std::string::npos);  // max value gets top ramp char
}

TEST(AsciiShademap, EmptyFieldIsNoop) {
  std::ostringstream os;
  ascii_shademap(os, {}, {}, {});
  EXPECT_TRUE(os.str().empty());
}

TEST(ContourCrossings, FindsInterpolatedCrossing) {
  const std::vector<double> row{0.0, 1.0, 2.0, 3.0};
  const auto xs = contour_crossings(row, 1.5);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_NEAR(xs[0], 1.5, 1e-12);
}

TEST(ContourCrossings, MultipleCrossings) {
  const std::vector<double> row{0.0, 2.0, 0.0, 2.0};
  const auto xs = contour_crossings(row, 1.0);
  EXPECT_EQ(xs.size(), 3u);
}

TEST(ContourCrossings, NoCrossing) {
  const std::vector<double> row{5.0, 6.0, 7.0};
  EXPECT_TRUE(contour_crossings(row, 1.0).empty());
}

}  // namespace
