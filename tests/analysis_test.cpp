// Unit tests for the reporting/analysis helpers.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "oci/analysis/report.hpp"

namespace {

using namespace oci::analysis;

TEST(Report, BannerContainsIdAndSeed) {
  std::ostringstream os;
  print_banner(os, "Figure 3", "TDC DNL", 42);
  const std::string s = os.str();
  EXPECT_NE(s.find("Figure 3"), std::string::npos);
  EXPECT_NE(s.find("TDC DNL"), std::string::npos);
  EXPECT_NE(s.find("seed = 42"), std::string::npos);
}

TEST(AsciiProfile, RendersOneRowPerSample) {
  std::ostringstream os;
  const std::vector<double> v{0.5, -0.5, 0.0, 1.0};
  ascii_profile(os, v, 1.0, 48, 10);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(os.str().find('#'), std::string::npos);
  EXPECT_NE(os.str().find('|'), std::string::npos);
}

TEST(AsciiProfile, DecimatesLongProfiles) {
  std::ostringstream os;
  std::vector<double> v(1000, 0.1);
  ascii_profile(os, v, 1.0, 50, 10);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 51u);
}

TEST(AsciiProfile, EmptyInputIsANoop) {
  std::ostringstream os;
  ascii_profile(os, {}, 1.0);
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiProfile, DegenerateScaleRendersFlatBars) {
  // Callers often pass max|value| as the scale; for constant-zero data
  // that is 0. The profile must still render (flat), not vanish or
  // divide by zero.
  std::ostringstream os;
  const std::vector<double> v{0.0, 0.0, 0.0};
  ascii_profile(os, v, 0.0, 48, 10);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(os.str().find('#'), std::string::npos);  // all bars empty
}

TEST(AsciiProfile, NonFiniteValuesRenderAsEmptyBars) {
  std::ostringstream os;
  const std::vector<double> v{std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(), 0.5};
  ascii_profile(os, v, 1.0, 48, 10);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(AsciiShademap, RendersGrid) {
  std::ostringstream os;
  const std::vector<std::vector<double>> field{{0.0, 1.0}, {2.0, 3.0}};
  ascii_shademap(os, field, {"r0", "r1"}, {"c0", "c1"});
  const std::string s = os.str();
  EXPECT_NE(s.find("r0"), std::string::npos);
  EXPECT_NE(s.find("r1"), std::string::npos);
  EXPECT_NE(s.find('@'), std::string::npos);  // max value gets top ramp char
}

TEST(AsciiShademap, EmptyFieldIsNoop) {
  std::ostringstream os;
  ascii_shademap(os, {}, {}, {});
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiShademap, ConstantFieldRendersWithoutDividingByZero) {
  // min == max: every cell maps to the ramp's bottom character and the
  // footer prints the (degenerate) range instead of inf/nan.
  std::ostringstream os;
  const std::vector<std::vector<double>> field{{1.5, 1.5}, {1.5, 1.5}};
  ascii_shademap(os, field, {"r0", "r1"}, {"c0", "c1"});
  const std::string s = os.str();
  EXPECT_NE(s.find("r0"), std::string::npos);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
  // Nothing maps to the top shade: '@' only appears in the ramp legend,
  // never in a grid row (rows are the lines containing '|').
  std::istringstream rows(s);
  std::string row;
  while (std::getline(rows, row)) {
    if (row.find('|') != std::string::npos) {
      EXPECT_EQ(row.find('@'), std::string::npos) << row;
    }
  }
}

TEST(AsciiShademap, AllEmptyRowsRenderWithoutInfiniteRange) {
  std::ostringstream os;
  const std::vector<std::vector<double>> field{{}, {}};
  ascii_shademap(os, field, {"r0", "r1"}, {});
  const std::string s = os.str();
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(AsciiShademap, NonFiniteCellsClampToRampEnds) {
  std::ostringstream os;
  const std::vector<std::vector<double>> field{
      {0.0, std::numeric_limits<double>::quiet_NaN()},
      {1.0, std::numeric_limits<double>::infinity()}};
  ascii_shademap(os, field, {"r0", "r1"}, {"c0", "c1"});
  EXPECT_FALSE(os.str().empty());  // must not crash or emit nan indices
}

TEST(ContourCrossings, FindsInterpolatedCrossing) {
  const std::vector<double> row{0.0, 1.0, 2.0, 3.0};
  const auto xs = contour_crossings(row, 1.5);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_NEAR(xs[0], 1.5, 1e-12);
}

TEST(ContourCrossings, MultipleCrossings) {
  const std::vector<double> row{0.0, 2.0, 0.0, 2.0};
  const auto xs = contour_crossings(row, 1.0);
  EXPECT_EQ(xs.size(), 3u);
}

TEST(ContourCrossings, NoCrossing) {
  const std::vector<double> row{5.0, 6.0, 7.0};
  EXPECT_TRUE(contour_crossings(row, 1.0).empty());
}

TEST(ReproScale, InjectableOverrideBeatsEnvironmentAndRestores) {
  const double env_value = repro_scale();  // whatever the process environment says
  set_repro_scale_for_test(0.25);
  EXPECT_DOUBLE_EQ(repro_scale(), 0.25);
  EXPECT_EQ(scaled(1000, 10), 250u);
  set_repro_scale_for_test(0.0001);
  EXPECT_EQ(scaled(1000, 10), 10u);  // floor still applies
  // Overrides clamp to (0, 1] like the env path.
  set_repro_scale_for_test(7.0);
  EXPECT_DOUBLE_EQ(repro_scale(), 1.0);
  // Non-positive and nullopt restore the environment-derived value.
  set_repro_scale_for_test(-3.0);
  EXPECT_DOUBLE_EQ(repro_scale(), env_value);
  set_repro_scale_for_test(0.5);
  set_repro_scale_for_test(std::nullopt);
  EXPECT_DOUBLE_EQ(repro_scale(), env_value);
}

}  // namespace
