// Tests for the disciplined local clock (optical sync loop).
#include <gtest/gtest.h>

#include "oci/bus/clock_sync.hpp"
#include "oci/util/random.hpp"

using namespace oci;
using bus::DisciplinedClock;
using bus::LocalClockParams;
using bus::SyncLoopParams;
using util::RngStream;
using util::Time;

LocalClockParams default_clock() {
  LocalClockParams c;
  c.nominal = util::Frequency::megahertz(200.0);
  c.frequency_error_ppm = 40.0;
  c.cycle_jitter_rms = Time::picoseconds(2.0);
  return c;
}

TEST(DisciplinedClock, ValidatesParameters) {
  auto c = default_clock();
  SyncLoopParams l;
  c.nominal = util::Frequency::hertz(0.0);
  EXPECT_THROW(DisciplinedClock(c, l), std::invalid_argument);
  c = default_clock();
  l.sync_interval_cycles = 0;
  EXPECT_THROW(DisciplinedClock(c, l), std::invalid_argument);
  l = SyncLoopParams{};
  l.proportional_gain = 2.5;
  EXPECT_THROW(DisciplinedClock(c, l), std::invalid_argument);
  l = SyncLoopParams{};
  l.detection_probability = 0.0;
  EXPECT_THROW(DisciplinedClock(c, l), std::invalid_argument);
}

TEST(DisciplinedClock, FreeRunningDriftGrowsLinearly) {
  // 40 ppm at 5 ns/cycle = 0.2 ps/cycle: after 100k cycles the phase
  // error reaches ~20 ns and max |error| tracks the last edge.
  auto c = default_clock();
  c.cycle_jitter_rms = Time::zero();
  const DisciplinedClock clk(c, SyncLoopParams{});
  RngStream rng(311);
  const auto r = clk.run_free(100000, rng);
  EXPECT_NEAR(r.max_abs_phase_error.nanoseconds(), 20.0, 0.5);
}

TEST(DisciplinedClock, LoopBoundsThePhaseError) {
  const DisciplinedClock clk(default_clock(), SyncLoopParams{});
  RngStream rng(313);
  const auto disciplined = clk.run(200000, rng, /*settle=*/5000);
  RngStream rng2(313);
  const auto free = clk.run_free(200000, rng2);
  // Free-running: tens of nanoseconds of drift and growing.
  // Disciplined: bounded well below a nanosecond.
  EXPECT_LT(disciplined.rms_phase_error.nanoseconds(), 1.0);
  EXPECT_GT(free.max_abs_phase_error.nanoseconds(),
            100.0 * disciplined.max_abs_phase_error.nanoseconds());
}

TEST(DisciplinedClock, IntegralTermLearnsTheFrequencyError) {
  auto c = default_clock();
  c.frequency_error_ppm = 75.0;
  // A quiet detector isolates the integral term's convergence; with a
  // noisy detector the frequency state fluctuates around the target
  // with a variance set by the measurement noise (by design).
  SyncLoopParams l;
  l.detector_jitter_rms = Time::picoseconds(5.0);
  const DisciplinedClock clk(c, l);
  RngStream rng(317);
  const auto r = clk.run(300000, rng, 10000);
  // The learned per-cycle correction cancels the oscillator's +75 ppm.
  EXPECT_NEAR(r.learned_correction_ppm, -75.0, 5.0);
}

TEST(DisciplinedClock, ResidualGrowsWithSyncInterval) {
  double prev_rms = 0.0;
  for (const std::uint64_t interval : {16ull, 64ull, 256ull, 1024ull}) {
    SyncLoopParams l;
    l.sync_interval_cycles = interval;
    const DisciplinedClock clk(default_clock(), l);
    RngStream rng(331);
    const auto r = clk.run(200000, rng, 20000);
    EXPECT_GT(r.rms_phase_error.seconds(), prev_rms)
        << "interval " << interval;
    prev_rms = r.rms_phase_error.seconds();
  }
}

TEST(DisciplinedClock, MissedSyncPulsesDegradeGracefully) {
  SyncLoopParams reliable;
  SyncLoopParams flaky;
  flaky.detection_probability = 0.5;
  const DisciplinedClock good(default_clock(), reliable);
  const DisciplinedClock bad(default_clock(), flaky);
  RngStream rng1(337), rng2(337);
  const auto good_run = good.run(200000, rng1, 10000);
  const auto bad_run = bad.run(200000, rng2, 10000);
  EXPECT_GT(bad_run.syncs_missed, 1000u);
  // Still locked (bounded), just noisier.
  EXPECT_GT(bad_run.rms_phase_error.seconds(), good_run.rms_phase_error.seconds());
  EXPECT_LT(bad_run.rms_phase_error.nanoseconds(), 5.0);
}

TEST(DisciplinedClock, SyncAccountingAddsUp) {
  SyncLoopParams l;
  l.sync_interval_cycles = 100;
  const DisciplinedClock clk(default_clock(), l);
  RngStream rng(347);
  const auto r = clk.run(100000, rng);
  EXPECT_EQ(r.syncs_received + r.syncs_missed, 1000u);
}

TEST(DisciplinedClock, PerfectOscillatorNeedsNoCorrection) {
  auto c = default_clock();
  c.frequency_error_ppm = 0.0;
  c.cycle_jitter_rms = Time::zero();
  SyncLoopParams l;
  l.detector_jitter_rms = Time::zero();
  const DisciplinedClock clk(c, l);
  RngStream rng(349);
  const auto r = clk.run(50000, rng);
  EXPECT_EQ(r.rms_phase_error.seconds(), 0.0);
  EXPECT_NEAR(r.learned_correction_ppm, 0.0, 1e-9);
}
