// Tests for the second wave of extension modules: intra-chip
// waveguides, analytic pile-up models, symbol synchronisation, and the
// FEC-protected link.
#include <gtest/gtest.h>

#include <cmath>

#include "oci/link/fec_link.hpp"
#include "oci/link/sync.hpp"
#include "oci/photonics/waveguide.hpp"
#include "oci/spad/pileup.hpp"
#include "oci/spad/spad.hpp"

namespace {

using namespace oci;
using util::Frequency;
using util::Length;
using util::RngStream;
using util::Time;

// ---------- waveguide ----------

photonics::WaveguideParams wg_params() {
  photonics::WaveguideParams p;
  p.propagation_loss_db_per_cm = 1.0;
  p.bend_loss_db = 0.1;
  p.coupling_loss_db = 1.5;
  p.splitter_excess_db = 0.3;
  return p;
}

TEST(Waveguide, DbHelpers) {
  EXPECT_NEAR(photonics::db_to_linear(3.0103), 0.5, 1e-4);
  EXPECT_NEAR(photonics::linear_to_db(0.1), 10.0, 1e-9);
  EXPECT_THROW((void)photonics::linear_to_db(0.0), std::invalid_argument);
}

TEST(Waveguide, LossBudgetAddsUp) {
  const photonics::Waveguide wg(wg_params());
  // 2 cm route, 4 bends: 2*1.0 + 4*0.1 + 2*1.5 = 5.4 dB.
  EXPECT_NEAR(wg.loss_db(Length::metres(0.02), 4), 5.4, 1e-9);
  EXPECT_NEAR(wg.transmittance(Length::metres(0.02), 4),
              photonics::db_to_linear(5.4), 1e-12);
}

TEST(Waveguide, SplitterTreeHalvesPerStage) {
  const photonics::Waveguide wg(wg_params());
  const double t0 = wg.split_transmittance(Length::metres(0.01), 0);
  const double t1 = wg.split_transmittance(Length::metres(0.01), 1);
  // One stage: 3.01 dB split + 0.3 dB excess ~ factor 0.467.
  EXPECT_NEAR(t1 / t0, photonics::db_to_linear(3.0103 + 0.3), 1e-6);
}

TEST(Waveguide, MaxRouteInvertsLoss) {
  const photonics::Waveguide wg(wg_params());
  const Length max = wg.max_route(0.01, 2);  // 20 dB budget
  EXPECT_NEAR(wg.transmittance(max, 2), 0.01, 1e-6);
  EXPECT_THROW((void)wg.max_route(0.0, 0), std::invalid_argument);
}

TEST(Waveguide, CentimetreScaleReach) {
  // With 1 dB/cm, a 10% budget (10 dB) reaches ~7 cm after interface
  // losses -- comfortably across any die. The paper's intra-chip claim.
  const photonics::Waveguide wg(wg_params());
  EXPECT_GT(wg.max_route(0.1).metres(), 0.05);
}

TEST(Waveguide, RejectsNegativeLoss) {
  auto p = wg_params();
  p.propagation_loss_db_per_cm = -1.0;
  EXPECT_THROW(photonics::Waveguide{p}, std::invalid_argument);
}

// ---------- pile-up ----------

TEST(Pileup, NonParalyzableFormula) {
  const Time tau = Time::nanoseconds(40.0);
  // r = 1/tau: R = r/2.
  const Frequency r = Frequency::hertz(1.0 / tau.seconds());
  EXPECT_NEAR(spad::nonparalyzable_rate(r, tau).hertz(), r.hertz() / 2.0, 1.0);
  // Low flux: R ~ r.
  EXPECT_NEAR(spad::nonparalyzable_rate(Frequency::kilohertz(1.0), tau).hertz(), 1000.0,
              0.1);
}

TEST(Pileup, ParalyzablePeaksAtInverseTau) {
  const Time tau = Time::nanoseconds(40.0);
  const Frequency peak_in = spad::paralyzable_peak_input(tau);
  const double at_peak = spad::paralyzable_rate(peak_in, tau).hertz();
  const double below = spad::paralyzable_rate(peak_in * 0.5, tau).hertz();
  const double above = spad::paralyzable_rate(peak_in * 2.0, tau).hertz();
  EXPECT_GT(at_peak, below);
  EXPECT_GT(at_peak, above);
  // Peak value is 1/(e*tau).
  EXPECT_NEAR(at_peak, 1.0 / (std::exp(1.0) * tau.seconds()), 1.0);
}

TEST(Pileup, SaturationAndLoss) {
  const Time tau = Time::nanoseconds(40.0);
  EXPECT_NEAR(spad::nonparalyzable_saturation(tau).megahertz(), 25.0, 1e-9);
  EXPECT_NEAR(spad::nonparalyzable_loss_fraction(Frequency::megahertz(25.0), tau), 0.5,
              1e-9);
  EXPECT_DOUBLE_EQ(spad::nonparalyzable_loss_fraction(Frequency::hertz(0.0), tau), 0.0);
}

TEST(Pileup, CorrectionInvertsForward) {
  const Time tau = Time::nanoseconds(40.0);
  const Frequency truth = Frequency::megahertz(10.0);
  const Frequency measured = spad::nonparalyzable_rate(truth, tau);
  EXPECT_NEAR(spad::correct_nonparalyzable(measured, tau).hertz(), truth.hertz(), 1.0);
  EXPECT_THROW((void)spad::correct_nonparalyzable(Frequency::megahertz(25.0), tau),
               std::invalid_argument);
}

TEST(Pileup, MonteCarloMatchesNonParalyzable) {
  // Validate the analytic law against the exact Monte Carlo detector.
  spad::SpadParams p;
  p.pdp_peak = 0.999;
  p.dcr_at_ref = Frequency::hertz(0.0);
  p.afterpulse_probability = 0.0;
  p.jitter_sigma = Time::zero();
  p.dead_time = Time::nanoseconds(40.0);
  const spad::Spad det(p, util::Wavelength::nanometres(480.0));
  RngStream rng(811);

  const Frequency incident = Frequency::megahertz(20.0);
  const Time window = Time::microseconds(200.0);
  std::vector<photonics::PhotonArrival> photons;
  const auto n = rng.poisson(incident.hertz() * window.seconds());
  for (std::int64_t i = 0; i < n; ++i) photons.push_back({rng.uniform_time(window), true});
  std::sort(photons.begin(), photons.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  const auto dets = det.detect(photons, Time::zero(), window, rng);

  const double predicted =
      spad::nonparalyzable_rate(incident, p.dead_time).hertz() * window.seconds();
  EXPECT_NEAR(static_cast<double>(dets.size()), predicted, predicted * 0.05);
}

// ---------- synchronisation ----------

link::SyncConfig sync_config() {
  link::SyncConfig c;
  c.symbol_period = Time::nanoseconds(56.576);
  c.slot_width = Time::nanoseconds(1.7);
  return c;
}

std::pair<std::vector<Time>, std::vector<std::uint64_t>> make_preamble(
    Time phase, double ppm, double jitter_ps, std::size_t n, RngStream& rng,
    const link::SyncConfig& cfg) {
  std::vector<Time> toas;
  std::vector<std::uint64_t> slots;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t slot = (i % 2 == 0) ? 0 : 31;
    const double t = phase.seconds() +
                     static_cast<double>(i) * cfg.symbol_period.seconds() * (1.0 + ppm * 1e-6) +
                     (static_cast<double>(slot) + 0.5) * cfg.slot_width.seconds() +
                     rng.normal(0.0, jitter_ps * 1e-12);
    toas.push_back(Time::seconds(t));
    slots.push_back(slot);
  }
  return {toas, slots};
}

TEST(Sync, RecoversPhaseExactlyWithoutNoise) {
  const auto cfg = sync_config();
  RngStream rng(821);
  const auto [toas, slots] =
      make_preamble(Time::nanoseconds(3.7), 0.0, 0.0, 8, rng, cfg);
  const auto r = link::acquire_sync(toas, slots, cfg);
  EXPECT_TRUE(r.locked);
  EXPECT_NEAR(r.phase.nanoseconds(), 3.7, 1e-6);
  EXPECT_NEAR(r.frequency_error_ppm, 0.0, 1e-6);
  EXPECT_LT(r.residual_rms_s, 1e-15);
}

TEST(Sync, EstimatesFrequencyError) {
  const auto cfg = sync_config();
  RngStream rng(823);
  const auto [toas, slots] =
      make_preamble(Time::nanoseconds(1.0), 250.0, 0.0, 16, rng, cfg);
  const auto r = link::acquire_sync(toas, slots, cfg);
  EXPECT_NEAR(r.frequency_error_ppm, 250.0, 0.01);
}

TEST(Sync, LocksUnderRealisticJitter) {
  const auto cfg = sync_config();
  RngStream rng(827);
  const auto [toas, slots] =
      make_preamble(Time::nanoseconds(2.0), 50.0, 120.0, 32, rng, cfg);
  const auto r = link::acquire_sync(toas, slots, cfg);
  EXPECT_TRUE(r.locked);
  EXPECT_NEAR(r.phase.nanoseconds(), 2.0, 0.2);
  EXPECT_NEAR(r.frequency_error_ppm, 50.0, 50.0);  // short preamble: coarse
}

TEST(Sync, RefusesToLockOnGarbage) {
  const auto cfg = sync_config();
  RngStream rng(829);
  std::vector<Time> toas;
  std::vector<std::uint64_t> slots;
  for (int i = 0; i < 16; ++i) {
    toas.push_back(rng.uniform_time(Time::microseconds(1.0)));
    slots.push_back(static_cast<std::uint64_t>(i % 2 == 0 ? 0 : 31));
  }
  const auto r = link::acquire_sync(toas, slots, cfg);
  EXPECT_FALSE(r.locked);
}

TEST(Sync, ValidatesInputs) {
  const auto cfg = sync_config();
  std::vector<Time> one{Time::zero()};
  std::vector<std::uint64_t> one_slot{0};
  EXPECT_THROW((void)link::acquire_sync(one, one_slot, cfg), std::invalid_argument);
  std::vector<Time> two{Time::zero(), Time::zero()};
  EXPECT_THROW((void)link::acquire_sync(two, one_slot, cfg), std::invalid_argument);
}

TEST(Sync, PhaseTrackerConverges) {
  link::PhaseTracker tracker(0.2);
  // Constant residual of 100 ps: the integrator walks towards it.
  const Time target = Time::picoseconds(100.0);
  for (int i = 0; i < 60; ++i) {
    (void)tracker.update(target - tracker.phase());
  }
  EXPECT_NEAR(tracker.phase().picoseconds(), 100.0, 1.0);
  EXPECT_EQ(tracker.updates(), 60u);
  EXPECT_THROW(link::PhaseTracker(0.0), std::invalid_argument);
  EXPECT_THROW(link::PhaseTracker(1.5), std::invalid_argument);
}

// ---------- FEC link ----------

link::OpticalLinkConfig fec_link_config() {
  link::OpticalLinkConfig c;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 8;  // narrow slots: jitter flips occasional bits
  c.channel_transmittance = 0.8;
  c.led.peak_power = util::Power::microwatts(50.0);
  // 120 ps sigma against a 208 ps slot: ~30% of symbols spill one slot
  // (single Gray bit, SECDED-correctable) while <1% spill two (frame
  // drop), so FEC transfers mostly succeed with corrections > 0.
  c.spad.jitter_sigma = Time::picoseconds(120.0);
  c.spad.dcr_at_ref = Frequency::hertz(0.0);
  c.spad.afterpulse_probability = 0.0;
  c.calibration_samples = 100000;
  return c;
}

TEST(FecLink, CleanChannelRoundTrip) {
  auto cfg = fec_link_config();
  cfg.spad.jitter_sigma = Time::zero();
  cfg.bits_per_symbol = 5;
  RngStream rng(839);
  const link::OpticalLink link(cfg, rng);
  const link::FecLink fec(link);
  RngStream tx(841);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 250, 251, 252};
  const auto r = fec.transfer(payload, tx);
  ASSERT_TRUE(r.payload.has_value());
  EXPECT_EQ(*r.payload, payload);
  EXPECT_EQ(r.corrections, 0u);
}

TEST(FecLink, CorrectsJitterFlips) {
  // On a jittery narrow-slot link, plain CRC framing loses frames that
  // FEC delivers (with corrections > 0 over many transfers).
  RngStream rng(853);
  const link::OpticalLink link(fec_link_config(), rng);
  const link::FecLink fec(link);

  RngStream tx(857);
  std::size_t fec_ok = 0, fec_corrections = 0;
  const std::vector<std::uint8_t> payload{'f', 'e', 'c', '-', 'd', 'a', 't', 'a'};
  const int transfers = 60;
  for (int i = 0; i < transfers; ++i) {
    const auto r = fec.transfer(payload, tx);
    if (r.payload && *r.payload == payload) {
      ++fec_ok;
      fec_corrections += r.corrections;
    }
  }
  EXPECT_GT(fec_ok, transfers / 2);
  EXPECT_GT(fec_corrections, 0u);  // it actually corrected something
}

TEST(FecLink, NeverDeliversCorruptPayload) {
  // Even on a terrible channel, a delivered payload must be intact
  // (CRC-8 after FEC): corruption -> nullopt, not wrong bytes.
  auto cfg = fec_link_config();
  cfg.spad.jitter_sigma = Time::picoseconds(600.0);  // catastrophic
  RngStream rng(859);
  const link::OpticalLink link(cfg, rng);
  const link::FecLink fec(link);
  RngStream tx(863);
  const std::vector<std::uint8_t> payload{9, 8, 7, 6, 5};
  for (int i = 0; i < 40; ++i) {
    const auto r = fec.transfer(payload, tx);
    if (r.payload) { EXPECT_EQ(*r.payload, payload); }
  }
}

TEST(FecLink, SymbolAccounting) {
  RngStream rng(877);
  const link::OpticalLink link(fec_link_config(), rng);
  const link::FecLink fec(link);
  // 8 payload bytes + 1 CRC = 9 bytes -> 18 coded bytes = 144 bits ->
  // 18 symbols at 8 bits/symbol.
  EXPECT_EQ(fec.symbols_for(8), 18u);
  RngStream tx(881);
  const auto r = fec.transfer(std::vector<std::uint8_t>(8, 0xAA), tx);
  EXPECT_EQ(r.stats.symbols_sent, 18u);
}

}  // namespace
