// Tests for the packet/MAC network layer over the shared optical bus.
#include <gtest/gtest.h>

#include <memory>

#include "oci/net/mac.hpp"
#include "oci/net/packet.hpp"
#include "oci/net/stack_network.hpp"

using namespace oci;
using net::AlohaMac;
using net::StackNetwork;
using net::StackNetworkConfig;
using net::TdmaMac;
using net::TokenMac;
using net::TrafficSpec;
using util::RngStream;

// ---------- helpers ----------

StackNetworkConfig uniform_config(std::size_t dies, double per_die_load) {
  StackNetworkConfig c;
  c.dies = dies;
  c.traffic.resize(dies);
  for (auto& t : c.traffic) {
    t.packets_per_slot = per_die_load;
    t.uniform_destinations = true;
  }
  return c;
}

// ---------- latency summary ----------

TEST(LatencySummary, EmptyIsZero) {
  const auto s = net::summarize_latencies({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.mean_slots, 0.0);
}

TEST(LatencySummary, QuantilesOrdered) {
  std::vector<double> lat;
  for (int i = 1; i <= 100; ++i) lat.push_back(static_cast<double>(i));
  const auto s = net::summarize_latencies(lat);
  EXPECT_EQ(s.samples, 100u);
  EXPECT_NEAR(s.mean_slots, 50.5, 1e-12);
  EXPECT_LE(s.p50_slots, s.p95_slots);
  EXPECT_LE(s.p95_slots, s.p99_slots);
  EXPECT_LE(s.p99_slots, s.max_slots);
  EXPECT_EQ(s.max_slots, 100.0);
}

// ---------- symbols per packet ----------

TEST(SymbolsPerPacket, RoundsUp) {
  // (8 + 4 overhead) bytes = 96 bits; at 7 bits/symbol -> ceil = 14.
  EXPECT_EQ(net::symbols_per_packet(8, 7), 14u);
  EXPECT_EQ(net::symbols_per_packet(8, 8), 12u);
  EXPECT_EQ(net::symbols_per_packet(0, 8, 4), 4u);
}

TEST(SymbolsPerPacket, RejectsZeroBits) {
  EXPECT_THROW((void)net::symbols_per_packet(8, 0), std::invalid_argument);
}

// ---------- MAC policies ----------

TEST(TdmaMacPolicy, GrantsOnlyTheSlotOwner) {
  TdmaMac mac(bus::TdmaSchedule::equal(4));
  RngStream rng(211);
  const std::vector<bool> all_busy(4, true);
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    const auto grant = mac.arbitrate(slot, all_busy, rng);
    ASSERT_EQ(grant.size(), 1u);
    EXPECT_EQ(grant.front(), slot % 4);
  }
}

TEST(TdmaMacPolicy, IdleOwnerWastesTheSlot) {
  TdmaMac mac(bus::TdmaSchedule::equal(2));
  RngStream rng(223);
  const std::vector<bool> only_one{false, true};
  EXPECT_TRUE(mac.arbitrate(0, only_one, rng).empty());  // die 0 idle
  EXPECT_EQ(mac.arbitrate(1, only_one, rng).size(), 1u);
}

TEST(TokenMacPolicy, WorkConservingSkipsIdleDies) {
  TokenMac mac(4, /*pass_slots=*/0);
  RngStream rng(227);
  // Only die 3 is backlogged: it gets every slot despite the rotation.
  const std::vector<bool> only_three{false, false, false, true};
  for (int i = 0; i < 5; ++i) {
    const auto grant = mac.arbitrate(static_cast<std::uint64_t>(i), only_three, rng);
    ASSERT_EQ(grant.size(), 1u);
    EXPECT_EQ(grant.front(), 3u);
  }
}

TEST(TokenMacPolicy, PassCostBurnsSlots) {
  TokenMac mac(2, /*pass_slots=*/2);
  RngStream rng(229);
  const std::vector<bool> only_one{false, true};
  // Token starts at die 0 (idle): the pass to die 1 costs 2 dead slots.
  EXPECT_TRUE(mac.arbitrate(0, only_one, rng).empty());
  EXPECT_TRUE(mac.arbitrate(1, only_one, rng).empty());
  const auto grant = mac.arbitrate(2, only_one, rng);
  ASSERT_EQ(grant.size(), 1u);
  EXPECT_EQ(grant.front(), 1u);
  // Holder now owns the medium with no further pass cost.
  EXPECT_EQ(mac.arbitrate(3, only_one, rng).size(), 1u);
}

TEST(TokenMacPolicy, ValidatesInputs) {
  EXPECT_THROW(TokenMac(0), std::invalid_argument);
  TokenMac mac(3);
  RngStream rng(233);
  const std::vector<bool> wrong_size(2, true);
  EXPECT_THROW((void)mac.arbitrate(0, wrong_size, rng), std::invalid_argument);
}

TEST(AlohaMacPolicy, CertainAttemptCollidesWhenTwoBusy) {
  AlohaMac mac(1.0);
  RngStream rng(239);
  const std::vector<bool> two_busy{true, true, false};
  const auto grant = mac.arbitrate(0, two_busy, rng);
  EXPECT_EQ(grant.size(), 2u);  // both transmit -> collision
}

TEST(AlohaMacPolicy, RejectsBadProbability) {
  EXPECT_THROW(AlohaMac(0.0), std::invalid_argument);
  EXPECT_THROW(AlohaMac(1.5), std::invalid_argument);
}

// ---------- network invariants ----------

TEST(StackNetwork, ValidatesConfig) {
  auto cfg = uniform_config(4, 0.05);
  cfg.traffic.pop_back();
  EXPECT_THROW(StackNetwork(cfg, std::make_unique<TokenMac>(4)), std::invalid_argument);

  cfg = uniform_config(4, 0.05);
  cfg.delivery_probability = 1.5;
  EXPECT_THROW(StackNetwork(cfg, std::make_unique<TokenMac>(4)), std::invalid_argument);

  cfg = uniform_config(4, 0.05);
  cfg.max_attempts = 0;
  EXPECT_THROW(StackNetwork(cfg, std::make_unique<TokenMac>(4)), std::invalid_argument);

  cfg = uniform_config(4, 0.05);
  cfg.traffic[0].uniform_destinations = false;
  cfg.traffic[0].destination = 9;
  EXPECT_THROW(StackNetwork(cfg, std::make_unique<TokenMac>(4)), std::invalid_argument);

  EXPECT_THROW(StackNetwork(uniform_config(4, 0.05), nullptr), std::invalid_argument);
}

TEST(StackNetwork, ZeroLoadStaysSilent) {
  StackNetwork netw(uniform_config(4, 0.0), std::make_unique<TokenMac>(4));
  RngStream rng(241);
  const auto r = netw.run(5000, rng);
  EXPECT_EQ(r.total_offered(), 0u);
  EXPECT_EQ(r.total_delivered(), 0u);
  EXPECT_EQ(r.idle_slots, 5000u);
}

TEST(StackNetwork, PacketConservation) {
  // offered = delivered + queue_drops + retry_drops + still queued.
  auto cfg = uniform_config(6, 0.08);
  cfg.delivery_probability = 0.9;
  StackNetwork netw(cfg, std::make_unique<TokenMac>(6));
  RngStream rng(251);
  const auto r = netw.run(20000, rng);
  std::uint64_t accounted = 0;
  for (const auto& d : r.per_die) {
    accounted += d.delivered + d.queue_drops + d.retry_drops;
  }
  EXPECT_EQ(r.total_offered(), accounted + netw.backlog());
  EXPECT_GT(r.total_delivered(), 0u);
}

TEST(StackNetwork, TdmaSharesFairlyUnderSymmetricLoad) {
  auto cfg = uniform_config(4, 0.2);  // 0.8 aggregate: near saturation
  StackNetwork netw(cfg, std::make_unique<TdmaMac>(bus::TdmaSchedule::equal(4)));
  RngStream rng(257);
  const auto r = netw.run(40000, rng);
  EXPECT_GT(r.fairness_index(), 0.99);
}

TEST(StackNetwork, TokenGivesLoneTalkerFullCapacity) {
  // One saturated die, rest silent: work-conserving token -> ~every
  // slot carries a packet; TDMA would cap it at 1/N.
  auto cfg = uniform_config(8, 0.0);
  cfg.traffic[2].packets_per_slot = 2.0;  // saturate die 2
  cfg.queue_capacity = 10000;
  StackNetwork token_net(cfg, std::make_unique<TokenMac>(8));
  RngStream rng(263);
  const auto token_run = token_net.run(10000, rng);
  EXPECT_GT(token_run.carried_load(), 0.95);

  StackNetwork tdma_net(cfg, std::make_unique<TdmaMac>(bus::TdmaSchedule::equal(8)));
  RngStream rng2(263);
  const auto tdma_run = tdma_net.run(10000, rng2);
  EXPECT_NEAR(tdma_run.carried_load(), 1.0 / 8.0, 0.02);
}

TEST(StackNetwork, AlohaThroughputPeaksWellBelowOne) {
  // Saturated slotted ALOHA tops out near 1/e; at p = 1 with several
  // backlogged dies it collapses to zero (all collisions).
  auto cfg = uniform_config(6, 0.5);
  cfg.queue_capacity = 100000;
  cfg.max_attempts = 1000000;  // isolate the MAC effect from ARQ drops
  StackNetwork good(cfg, std::make_unique<AlohaMac>(1.0 / 6.0));
  RngStream rng(269);
  const auto good_run = good.run(20000, rng);
  EXPECT_GT(good_run.carried_load(), 0.25);
  EXPECT_LT(good_run.carried_load(), 0.45);

  StackNetwork bad(cfg, std::make_unique<AlohaMac>(1.0));
  RngStream rng2(269);
  const auto bad_run = bad.run(20000, rng2);
  EXPECT_LT(bad_run.carried_load(), 0.01);
  EXPECT_GT(bad_run.collision_slots, 15000u);
}

TEST(StackNetwork, ArqRetriesLossyLink) {
  auto cfg = uniform_config(2, 0.05);
  cfg.delivery_probability = 0.5;
  cfg.max_attempts = 10;
  StackNetwork netw(cfg, std::make_unique<TokenMac>(2));
  RngStream rng(271);
  const auto r = netw.run(30000, rng);
  std::uint64_t transmissions = 0;
  for (const auto& d : r.per_die) transmissions += d.transmissions;
  // Each delivery costs ~2 transmissions at p = 0.5.
  EXPECT_GT(static_cast<double>(transmissions),
            1.7 * static_cast<double>(r.total_delivered()));
  EXPECT_GT(r.delivery_ratio(), 0.99);  // 10 attempts at 0.5 -> ~all arrive
}

TEST(StackNetwork, RetryBudgetDropsOnDeadLink) {
  auto cfg = uniform_config(2, 0.02);
  cfg.delivery_probability = 0.0;
  cfg.max_attempts = 3;
  StackNetwork netw(cfg, std::make_unique<TokenMac>(2));
  RngStream rng(277);
  const auto r = netw.run(10000, rng);
  EXPECT_EQ(r.total_delivered(), 0u);
  std::uint64_t retry_drops = 0;
  for (const auto& d : r.per_die) retry_drops += d.retry_drops;
  EXPECT_GT(retry_drops, 100u);
}

TEST(StackNetwork, QueueCapacityDropsAtEntry) {
  auto cfg = uniform_config(1, 3.0);  // heavy overload on one die
  cfg.traffic[0].uniform_destinations = false;
  cfg.traffic[0].destination = net::kBroadcast;
  cfg.queue_capacity = 4;
  StackNetwork netw(cfg, std::make_unique<TokenMac>(1));
  RngStream rng(281);
  const auto r = netw.run(5000, rng);
  EXPECT_GT(r.per_die[0].queue_drops, 1000u);
  EXPECT_LE(netw.backlog(), 4u);
}

TEST(StackNetwork, LatencyGrowsWithLoad) {
  auto light_cfg = uniform_config(4, 0.02);
  auto heavy_cfg = uniform_config(4, 0.22);
  StackNetwork light(light_cfg, std::make_unique<TdmaMac>(bus::TdmaSchedule::equal(4)));
  StackNetwork heavy(heavy_cfg, std::make_unique<TdmaMac>(bus::TdmaSchedule::equal(4)));
  RngStream rng1(283), rng2(283);
  const auto light_run = light.run(30000, rng1);
  const auto heavy_run = heavy.run(30000, rng2);
  EXPECT_LT(light_run.latency.p99_slots, heavy_run.latency.p99_slots);
  EXPECT_LT(light_run.latency.mean_slots, heavy_run.latency.mean_slots);
}

TEST(StackNetwork, WarmRestartContinuesQueues) {
  auto cfg = uniform_config(2, 0.7);  // 1.4 aggregate: oversubscribed
  cfg.queue_capacity = 100000;
  StackNetwork netw(cfg, std::make_unique<TokenMac>(2));
  RngStream rng(293);
  (void)netw.run(5000, rng);
  const std::size_t mid_backlog = netw.backlog();
  EXPECT_GT(mid_backlog, 0u);
  const auto second = netw.run(5000, rng);
  // Latencies in the second window include packets queued in the first.
  EXPECT_GT(second.latency.max_slots, 1000.0);
}

TEST(StackNetwork, WeightedTdmaSkewsBandwidth) {
  // Both dies saturated: delivered bandwidth follows the 3:1 slot
  // weights (at partial load it would follow min(offered, share)).
  auto cfg = uniform_config(2, 1.0);
  cfg.queue_capacity = 100000;
  StackNetwork netw(cfg,
                    std::make_unique<TdmaMac>(bus::TdmaSchedule({3, 1})));
  RngStream rng(307);
  const auto r = netw.run(20000, rng);
  const double ratio = static_cast<double>(r.per_die[0].delivered) /
                       static_cast<double>(r.per_die[1].delivered);
  EXPECT_NEAR(ratio, 3.0, 0.3);
}
