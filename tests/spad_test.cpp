// Unit tests for the SPAD detector model.
#include <gtest/gtest.h>

#include <cmath>

#include "oci/spad/pdp.hpp"
#include "oci/spad/spad.hpp"
#include "oci/util/statistics.hpp"

namespace {

using namespace oci::spad;
using oci::photonics::PhotonArrival;
using oci::util::Frequency;
using oci::util::RngStream;
using oci::util::RunningStats;
using oci::util::Temperature;
using oci::util::Time;
using oci::util::Voltage;
using oci::util::Wavelength;

SpadParams quiet_spad() {
  SpadParams p;
  p.dcr_at_ref = Frequency::hertz(0.0);
  p.afterpulse_probability = 0.0;
  p.jitter_sigma = Time::zero();
  return p;
}

// ---------- PDP ----------

TEST(Pdp, PeaksNearBlue) {
  const double peak = pdp_spectral_shape(Wavelength::nanometres(480.0));
  EXPECT_DOUBLE_EQ(peak, 1.0);
  EXPECT_LT(pdp_spectral_shape(Wavelength::nanometres(850.0)), 0.1);
  EXPECT_LT(pdp_spectral_shape(Wavelength::nanometres(350.0)), 0.1);
}

TEST(Pdp, AbsoluteScaleFromPeak) {
  SpadParams p;
  p.pdp_peak = 0.30;
  EXPECT_NEAR(pdp(p, Wavelength::nanometres(480.0)), 0.30, 1e-12);
  EXPECT_NEAR(pdp(p, Wavelength::nanometres(450.0)), 0.27, 1e-12);
}

TEST(Pdp, BiasFactorSaturates) {
  const Voltage nominal = Voltage::volts(3.3);
  EXPECT_DOUBLE_EQ(pdp_bias_factor(nominal, nominal), 1.0);
  EXPECT_LT(pdp_bias_factor(Voltage::volts(1.0), nominal), 1.0);
  EXPECT_GT(pdp_bias_factor(Voltage::volts(6.0), nominal), 1.0);
  EXPECT_DOUBLE_EQ(pdp_bias_factor(Voltage::volts(0.0), nominal), 0.0);
  // Diminishing returns: going 3.3 -> 6 V gains less than 1 -> 3.3 V.
  const double low_gain = pdp_bias_factor(nominal, nominal) - pdp_bias_factor(Voltage::volts(1.0), nominal);
  const double high_gain = pdp_bias_factor(Voltage::volts(6.0), nominal) - 1.0;
  EXPECT_GT(low_gain, high_gain);
}

TEST(Pdp, DcrDoublingLaw) {
  SpadParams p;
  p.dcr_at_ref = Frequency::hertz(350.0);
  p.dcr_ref_temperature = Temperature::celsius(25.0);
  p.dcr_doubling_kelvin = 8.0;
  EXPECT_NEAR(dark_count_rate(p, Temperature::celsius(25.0)).hertz(), 350.0, 1e-9);
  EXPECT_NEAR(dark_count_rate(p, Temperature::celsius(33.0)).hertz(), 700.0, 1e-6);
  EXPECT_NEAR(dark_count_rate(p, Temperature::celsius(17.0)).hertz(), 175.0, 1e-6);
}

// ---------- detection ----------

TEST(Spad, DetectsStrongPulseWithCertainty) {
  const Spad spad(quiet_spad(), Wavelength::nanometres(480.0));
  EXPECT_NEAR(spad.pdp(), 0.30, 1e-12);
  EXPECT_NEAR(spad.pulse_detection_probability(100.0), 1.0, 1e-9);
  EXPECT_NEAR(spad.pulse_detection_probability(0.0), 0.0, 1e-12);
}

TEST(Spad, RequiredMeanPhotonsInverts) {
  const Spad spad(quiet_spad(), Wavelength::nanometres(480.0));
  const double mu = spad.required_mean_photons(0.99);
  EXPECT_NEAR(spad.pulse_detection_probability(mu), 0.99, 1e-9);
  EXPECT_THROW((void)spad.required_mean_photons(1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(spad.required_mean_photons(0.0), 0.0);
}

TEST(Spad, PdpThinning) {
  const Spad spad(quiet_spad(), Wavelength::nanometres(480.0));
  RngStream rng(31);
  // 10000 well-separated photons: detections ~ Binomial(10000, 0.3).
  std::vector<PhotonArrival> photons;
  const Time gap = Time::nanoseconds(100.0);  // >> dead time
  for (int i = 0; i < 10000; ++i) {
    photons.push_back({gap * static_cast<double>(i), true});
  }
  const Time window = gap * 10000.0;
  const auto dets = spad.detect(photons, Time::zero(), window, rng);
  EXPECT_NEAR(static_cast<double>(dets.size()), 3000.0, 150.0);
  for (const auto& d : dets) EXPECT_EQ(d.cause, DetectionCause::kSignal);
}

TEST(Spad, NonParalyzableDeadTime) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.999;  // detect everything
  p.dead_time = Time::nanoseconds(40.0);
  p.quench = QuenchMode::kActive;
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(37);
  // Photons every 10 ns for 400 ns: only every 4th can fire.
  std::vector<PhotonArrival> photons;
  for (int i = 0; i < 40; ++i) {
    photons.push_back({Time::nanoseconds(10.0 * i), true});
  }
  const auto dets = spad.detect(photons, Time::zero(), Time::nanoseconds(400.0), rng);
  EXPECT_EQ(dets.size(), 10u);  // t=0,40,80,...,360
  for (std::size_t i = 1; i < dets.size(); ++i) {
    EXPECT_GE((dets[i].true_time - dets[i - 1].true_time).nanoseconds(), 40.0 - 1e-9);
  }
}

TEST(Spad, ParalyzableDeadTimeExtends) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.999;
  p.dead_time = Time::nanoseconds(40.0);
  p.quench = QuenchMode::kPassive;
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(41);
  // Photons every 10 ns continuously re-trigger the recharge: after the
  // first detection the detector never recovers within the window.
  std::vector<PhotonArrival> photons;
  for (int i = 0; i < 40; ++i) {
    photons.push_back({Time::nanoseconds(10.0 * i), true});
  }
  const auto dets = spad.detect(photons, Time::zero(), Time::nanoseconds(400.0), rng);
  EXPECT_EQ(dets.size(), 1u);
}

TEST(Spad, DarkCountsAtExpectedRate) {
  SpadParams p = quiet_spad();
  p.dcr_at_ref = Frequency::kilohertz(100.0);
  const Spad spad(p, Wavelength::nanometres(480.0), Temperature::celsius(25.0));
  RngStream rng(43);
  RunningStats s;
  const Time window = Time::microseconds(100.0);
  for (int i = 0; i < 200; ++i) {
    const auto dets = spad.detect({}, Time::zero(), window, rng);
    s.add(static_cast<double>(dets.size()));
    for (const auto& d : dets) EXPECT_EQ(d.cause, DetectionCause::kDark);
  }
  // 100 kHz x 100 us = 10 expected (dead time shaves a touch off).
  EXPECT_NEAR(s.mean(), 10.0, 0.5);
}

TEST(Spad, DcrFollowsTemperature) {
  SpadParams p = quiet_spad();
  p.dcr_at_ref = Frequency::hertz(350.0);
  Spad spad(p, Wavelength::nanometres(480.0), Temperature::celsius(25.0));
  const double dcr_cold = spad.dcr().hertz();
  spad.set_temperature(Temperature::celsius(65.0));
  EXPECT_NEAR(spad.dcr().hertz() / dcr_cold, 32.0, 0.1);  // 5 doublings
}

TEST(Spad, AfterpulsesFollowDetections) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.999;
  p.afterpulse_probability = 0.5;  // exaggerated for test power
  p.afterpulse_tau = Time::nanoseconds(20.0);
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(47);
  std::size_t afterpulses = 0;
  std::size_t signals = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<PhotonArrival> photons{{Time::nanoseconds(1.0), true}};
    const auto dets = spad.detect(photons, Time::zero(), Time::microseconds(1.0), rng);
    for (const auto& d : dets) {
      if (d.cause == DetectionCause::kAfterpulse) {
        ++afterpulses;
        // Afterpulse cannot occur inside the dead time.
        EXPECT_GE(d.true_time.nanoseconds(), 1.0 + 40.0 - 1e-9);
      } else {
        ++signals;
      }
    }
  }
  EXPECT_EQ(signals, 500u);
  // Cascaded afterpulsing: expected count slightly above p/(1-p) = 1 per
  // 2 detections... with p=0.5 expect ~ signals * ~1.0 (geometric sum),
  // loosely bounded here.
  EXPECT_GT(afterpulses, 350u);
  EXPECT_LT(afterpulses, 700u);
}

TEST(Spad, JitterSpreadsTimestamps) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.999;
  p.jitter_sigma = Time::picoseconds(100.0);
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(53);
  RunningStats s;
  for (int i = 0; i < 3000; ++i) {
    std::vector<PhotonArrival> photons{{Time::nanoseconds(50.0), true}};
    const auto dets = spad.detect(photons, Time::zero(), Time::nanoseconds(100.0), rng);
    if (dets.empty()) continue;  // PDP=0.999 still misses ~0.1% of pulses
    s.add((dets[0].time - dets[0].true_time).picoseconds());
  }
  ASSERT_GT(s.count(), 2900u);
  EXPECT_NEAR(s.mean(), 0.0, 10.0);
  EXPECT_NEAR(s.stddev(), 100.0, 5.0);
}

TEST(Spad, InitiallyDeadUntilRespected) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.999;
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(59);
  std::vector<PhotonArrival> photons{{Time::nanoseconds(5.0), true}};
  const auto dets = spad.detect(photons, Time::zero(), Time::nanoseconds(100.0), rng,
                                /*initially_dead_until=*/Time::nanoseconds(10.0));
  EXPECT_TRUE(dets.empty());
}

TEST(Spad, PhotonsOutsideWindowIgnored) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.999;
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(61);
  std::vector<PhotonArrival> photons{
      {Time::nanoseconds(-5.0), true},
      {Time::nanoseconds(150.0), true},
  };
  const auto dets = spad.detect(photons, Time::zero(), Time::nanoseconds(100.0), rng);
  EXPECT_TRUE(dets.empty());
}

TEST(Spad, RejectsBadParams) {
  SpadParams p;
  p.dead_time = Time::zero();
  EXPECT_THROW(Spad(p, Wavelength::nanometres(480.0)), std::invalid_argument);
  p = SpadParams{};
  p.afterpulse_probability = 1.0;
  EXPECT_THROW(Spad(p, Wavelength::nanometres(480.0)), std::invalid_argument);
}

TEST(Spad, DetectionsSortedByTimestamp) {
  SpadParams p = quiet_spad();
  p.pdp_peak = 0.9;
  p.jitter_sigma = Time::picoseconds(200.0);
  const Spad spad(p, Wavelength::nanometres(480.0));
  RngStream rng(67);
  std::vector<PhotonArrival> photons;
  for (int i = 0; i < 50; ++i) photons.push_back({Time::nanoseconds(45.0 * i), true});
  const auto dets =
      spad.detect(photons, Time::zero(), Time::microseconds(3.0), rng);
  for (std::size_t i = 1; i < dets.size(); ++i) {
    EXPECT_LE(dets[i - 1].time.seconds(), dets[i].time.seconds());
  }
}

}  // namespace
