// The fault-injection subsystem: deterministic realisation, the SPAD
// pixel-state path, MAC re-arbitration over survivors, NoC routing
// around dead dies, and end-to-end faulted scenario runs that must be
// bit-identical across thread counts while degrading monotonically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "oci/fault/fault.hpp"
#include "oci/net/mac.hpp"
#include "oci/net/stack_network.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/spec.hpp"
#include "oci/spad/array.hpp"
#include "oci/util/random.hpp"
#include "support/stat_assert.hpp"

namespace {

using namespace oci;
using util::RngStream;
using util::Time;

// ---------- realisation primitives ----------

TEST(Fault, PickCountRoundsDeterministically) {
  EXPECT_EQ(fault::pick_count(64, 0.0), 0u);
  EXPECT_EQ(fault::pick_count(64, 0.5), 32u);
  EXPECT_EQ(fault::pick_count(64, 1.0), 64u);
  EXPECT_EQ(fault::pick_count(8, 0.4), 3u);   // round(3.2)
  EXPECT_EQ(fault::pick_count(8, 0.45), 4u);  // round(3.6)
  EXPECT_EQ(fault::pick_count(0, 0.7), 0u);
  // Never exceeds n even with rounding at the top.
  EXPECT_EQ(fault::pick_count(3, 0.999), 3u);
}

TEST(Fault, PickSubsetIsExactSortedUniqueAndDrawCounted) {
  RngStream rng(101);
  const auto sub = fault::pick_subset(50, 12, rng);
  EXPECT_EQ(rng.draws(), 12u);  // exactly k draws: chunk accounting relies on it
  ASSERT_EQ(sub.size(), 12u);
  EXPECT_TRUE(std::is_sorted(sub.begin(), sub.end()));
  EXPECT_EQ(std::adjacent_find(sub.begin(), sub.end()), sub.end());
  for (const std::uint32_t v : sub) EXPECT_LT(v, 50u);

  // k == n selects everyone; k == 0 selects no one and draws nothing.
  RngStream all_rng(103);
  const auto all = fault::pick_subset(5, 5, all_rng);
  EXPECT_EQ(all, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  RngStream none_rng(107);
  EXPECT_TRUE(fault::pick_subset(5, 0, none_rng).empty());
  EXPECT_EQ(none_rng.draws(), 0u);
}

TEST(Fault, RealiseIsDeterministicAndSaltSensitive) {
  fault::FaultSpec spec;
  spec.dead_pixel_fraction = 0.25;
  spec.hot_pixel_fraction = 0.125;
  spec.array_pixels = 64;
  spec.dead_channel_fraction = 0.5;
  spec.channel_attenuation_db = 3.0;
  spec.dead_node_fraction = 0.25;
  spec.link_failure_probability = 0.3;
  fault::Context ctx;
  ctx.wdm_channels = 8;
  ctx.noc_dies = 8;

  // Identical streams -> identical realisations, field for field.
  RngStream a(42, "fault/0/0");
  RngStream b(42, "fault/0/0");
  const fault::Realisation ra = fault::realise(spec, ctx, a);
  const fault::Realisation rb = fault::realise(spec, ctx, b);
  EXPECT_EQ(a.draws(), b.draws());
  EXPECT_EQ(ra.channel_scale, rb.channel_scale);
  EXPECT_EQ(ra.dead_nodes, rb.dead_nodes);
  EXPECT_EQ(ra.broken_links, rb.broken_links);
  EXPECT_EQ(ra.pixels.dead, rb.pixels.dead);
  EXPECT_EQ(ra.pixels.hot, rb.pixels.hot);

  // The realised shape honours the spec: exact counts, exact scales.
  EXPECT_EQ(ra.pixels.dead, 16u);
  EXPECT_EQ(ra.pixels.hot, 8u);
  EXPECT_EQ(std::count(ra.channel_scale.begin(), ra.channel_scale.end(), 0.0), 4);
  EXPECT_EQ(std::count(ra.dead_nodes.begin(), ra.dead_nodes.end(), 1), 2);
  EXPECT_EQ(ra.live_nodes(), 6u);

  // A different salt (i.e. a differently keyed stream) draws a
  // different concrete realisation of the same spec.
  RngStream c(42, "fault/0/1");
  const fault::Realisation rc = fault::realise(spec, ctx, c);
  EXPECT_TRUE(rc.dead_nodes != ra.dead_nodes || rc.channel_scale != ra.channel_scale ||
              rc.broken_links != ra.broken_links);
}

TEST(Fault, PixelFoldArithmetic) {
  fault::PixelFaults pf;
  pf.pixels = 64;
  pf.dead = 16;
  pf.hot = 8;
  pf.hot_dcr_hz = 1.0e6;

  pf.masked = true;  // masked hot pixels lose area AND go silent
  EXPECT_DOUBLE_EQ(pf.pdp_scale(), 40.0 / 64.0);
  EXPECT_DOUBLE_EQ(pf.dcr_scale(), 40.0 / 64.0);
  EXPECT_DOUBLE_EQ(pf.extra_dcr_hz(), 0.0);

  pf.masked = false;  // unmasked: keep the area, pay the screaming
  EXPECT_DOUBLE_EQ(pf.pdp_scale(), 48.0 / 64.0);
  EXPECT_DOUBLE_EQ(pf.extra_dcr_hz(), 8.0e6);

  const fault::PixelFaults clean;
  EXPECT_DOUBLE_EQ(clean.pdp_scale(), 1.0);
  EXPECT_DOUBLE_EQ(clean.dcr_scale(), 1.0);
}

// ---------- SPAD array pixel states ----------

spad::SpadArrayParams quiet_array(std::size_t diodes) {
  spad::SpadArrayParams p;
  p.diodes = diodes;
  p.fill_factor = 1.0;
  p.element.pdp_peak = 0.999;
  p.element.dcr_at_ref = util::Frequency::hertz(0.0);
  p.element.afterpulse_probability = 0.0;
  p.element.jitter_sigma = Time::zero();
  p.element.dead_time = Time::nanoseconds(40.0);
  return p;
}

TEST(Fault, SpadArrayDeadPixelsNeverFire) {
  spad::SpadArray arr(quiet_array(4), util::Wavelength::nanometres(480.0));
  arr.set_pixel_states({spad::PixelState::kDead, spad::PixelState::kDead,
                        spad::PixelState::kDead, spad::PixelState::kDead});
  EXPECT_DOUBLE_EQ(arr.live_fraction(), 0.0);

  RngStream rng(211);
  std::vector<photonics::PhotonArrival> photons;
  for (int i = 0; i < 100; ++i) photons.push_back({Time::nanoseconds(10.0 * i), true});
  std::vector<Time> dead(4, Time::zero());
  const auto dets = arr.detect(photons, Time::zero(), Time::microseconds(1.1), rng, dead);
  EXPECT_TRUE(dets.empty());
}

TEST(Fault, SpadArrayMaskedHotPixelIsSilentUnmaskedScreams) {
  // No photons at all: every detection is a dark count, so the hot
  // pixel's treatment is directly observable.
  spad::SpadArray arr(quiet_array(2), util::Wavelength::nanometres(480.0));
  const std::vector<photonics::PhotonArrival> no_photons;

  arr.set_pixel_states({spad::PixelState::kHealthy, spad::PixelState::kMasked});
  EXPECT_DOUBLE_EQ(arr.live_fraction(), 0.5);
  RngStream quiet_rng(223);
  std::vector<Time> dead(2, Time::zero());
  const auto quiet =
      arr.detect(no_photons, Time::zero(), Time::milliseconds(1.0), quiet_rng, dead);
  EXPECT_TRUE(quiet.empty());  // masked pixel contributes nothing

  arr.set_pixel_states({spad::PixelState::kHealthy, spad::PixelState::kHot},
                       util::Frequency::megahertz(1.0));
  EXPECT_DOUBLE_EQ(arr.live_fraction(), 1.0);  // hot still photon-sensitive
  RngStream hot_rng(227);
  std::fill(dead.begin(), dead.end(), Time::zero());
  const auto hot =
      arr.detect(no_photons, Time::zero(), Time::milliseconds(1.0), hot_rng, dead);
  // ~1000 expected dark counts in 1 ms at 1 MHz (dead time trims some).
  EXPECT_GT(hot.size(), 500u);
}

TEST(Fault, SpadArrayDeadPixelStaysDeadAcrossWindows) {
  // Regression for the resurrected-sentinel bug: the passive-quench
  // bookkeeping must never shorten a dead pixel's blind horizon.
  spad::SpadArray arr(quiet_array(2), util::Wavelength::nanometres(480.0));
  arr.set_pixel_states({spad::PixelState::kDead, spad::PixelState::kHealthy});

  RngStream rng(229);
  std::vector<photonics::PhotonArrival> photons;
  for (int i = 0; i < 50; ++i) photons.push_back({Time::nanoseconds(100.0 * i), true});
  std::vector<Time> dead(2, Time::zero());
  for (int window = 0; window < 3; ++window) {
    const auto dets =
        arr.detect(photons, Time::microseconds(5.0 * window), Time::microseconds(5.0),
                   rng, dead);
    // The single healthy diode at 100 ns spacing vs 40 ns recovery
    // catches everything; the dead one must contribute nothing extra.
    EXPECT_LE(dets.size(), photons.size());
  }
  EXPECT_TRUE(spad::is_never(dead[0]) || dead[0] == Time::zero());
  EXPECT_FALSE(spad::is_never(dead[1]));
}

// ---------- MAC re-arbitration over survivors ----------

TEST(Fault, SubsetMacGrantsOnlyLiveDies) {
  // 6-die stack, dies {1, 3, 4} dead. The token ring over the
  // survivors must never grant a dead die, even when the dead die
  // claims backlog (stale queue state), and grants map back to FULL
  // die indices.
  auto inner = std::make_unique<net::TokenMac>(3, 0);
  net::SubsetMac mac(std::move(inner), {0, 2, 5}, 6);
  RngStream rng(233);
  const std::vector<bool> all(6, true);  // includes dead dies
  for (std::uint64_t slot = 0; slot < 6; ++slot) {
    const net::SlotGrant g = mac.arbitrate(slot, all, rng);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_TRUE(g[0] == 0 || g[0] == 2 || g[0] == 5);
  }
  // Only die 5 live-and-backlogged: the work-conserving token bypasses
  // the dead dies (whose stale backlog flags are dropped) to reach it.
  std::vector<bool> only5{false, true, false, true, true, true};
  only5[5] = true;
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    const net::SlotGrant g = mac.arbitrate(slot, only5, rng);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0], 5u);
  }
}

TEST(Fault, SubsetMacTdmaReclaimsDeadSlots) {
  // TDMA rebuilt for 2 survivors of 4: every slot belongs to a live
  // die -- the dead dies' slots are reclaimed, not wasted.
  auto inner = std::make_unique<net::TdmaMac>(bus::TdmaSchedule::equal(2));
  net::SubsetMac mac(std::move(inner), {1, 2}, 4);
  RngStream rng(239);
  const std::vector<bool> backlogged(4, true);
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    const net::SlotGrant g = mac.arbitrate(slot, backlogged, rng);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_TRUE(g[0] == 1 || g[0] == 2);
  }
}

// ---------- NoC dead nodes and broken links ----------

TEST(Fault, StackNetworkRoutesUniformTrafficAroundDeadDies) {
  net::StackNetworkConfig cfg;
  cfg.dies = 4;
  cfg.traffic.resize(4);
  for (auto& t : cfg.traffic) {
    t.packets_per_slot = 0.1;
    t.uniform_destinations = true;
  }
  cfg.dead_nodes = {0, 0, 0, 1};  // die 3 dead
  cfg.reroute_dead_destinations = true;
  net::StackNetwork network(cfg, std::make_unique<net::TokenMac>(4, 0));
  RngStream rng(241);
  const net::NetworkRunResult r = network.run(20000, rng);

  EXPECT_EQ(r.per_die[3].offered, 0u);    // dead dies source nothing
  EXPECT_EQ(r.per_die[3].delivered, 0u);  // and transmit nothing
  // Live dies reroute around the hole: with perfect delivery nothing
  // dies to retries, so everything offered is delivered or still
  // queued (no packet was lost addressing the dead die).
  for (std::size_t die = 0; die < 3; ++die) {
    EXPECT_EQ(r.per_die[die].retry_drops, 0u);
    EXPECT_EQ(r.per_die[die].queue_drops, 0u);
  }
  EXPECT_EQ(r.total_delivered() + network.backlog(), r.total_offered());
  EXPECT_GT(r.total_delivered(), 0u);
}

TEST(Fault, StackNetworkFixedTrafficToDeadDieIsUnroutable) {
  net::StackNetworkConfig cfg;
  cfg.dies = 3;
  cfg.traffic.resize(3);
  cfg.traffic[0].packets_per_slot = 0.2;
  cfg.traffic[0].destination = 2;  // addressed to the dead die
  cfg.dead_nodes = {0, 0, 1};
  cfg.reroute_dead_destinations = true;
  net::StackNetwork network(cfg, std::make_unique<net::TokenMac>(3, 0));
  RngStream rng(251);
  const net::NetworkRunResult r = network.run(5000, rng);
  EXPECT_GT(r.per_die[0].offered, 0u);
  EXPECT_EQ(r.per_die[0].delivered, 0u);
  // Unroutable at entry: counted as queue drops, no bus slots burned.
  EXPECT_EQ(r.per_die[0].queue_drops, r.per_die[0].offered);
  EXPECT_EQ(r.per_die[0].transmissions, 0u);
}

TEST(Fault, StackNetworkBrokenLinkFailsDeterministically) {
  net::StackNetworkConfig cfg;
  cfg.dies = 2;
  cfg.traffic.resize(2);
  cfg.traffic[0].packets_per_slot = 0.2;
  cfg.traffic[0].destination = 1;
  cfg.max_attempts = 2;
  cfg.broken_links = {0, 1,   // 0 -> 1 broken
                      0, 0};
  net::StackNetwork network(cfg, std::make_unique<net::TokenMac>(2, 0));
  RngStream rng(257);
  const net::NetworkRunResult r = network.run(5000, rng);
  EXPECT_GT(r.per_die[0].offered, 0u);
  EXPECT_EQ(r.per_die[0].delivered, 0u);
  EXPECT_GT(r.per_die[0].retry_drops, 0u);  // ARQ exhausts, packets die
}

// ---------- end-to-end scenario behaviour ----------

scenario::ScenarioSpec starved_link_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "fault_e2e";
  spec.seed = 701;
  spec.device.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.device.led.peak_power = util::Power::nanowatts(20.0);
  spec.device.spad.dcr_at_ref = util::Frequency::hertz(0.0);
  spec.device.spad.afterpulse_probability = 0.0;
  spec.budget.samples = 2000;
  spec.budget.repro_scaled = false;
  return spec;
}

TEST(Fault, FaultedLinkSweepIsThreadCountInvariant) {
  // The acceptance bar: a multi-fault sweep must be bit-identical
  // whether one thread or eight simulate it, because the realisation
  // stream is keyed by (seed, point, salt) -- never by chunk or thread.
  scenario::ScenarioSpec spec = starved_link_spec();
  spec.fault.dark_window_probability = 0.1;
  spec.fault.array_pixels = 64;
  spec.sweep = {scenario::SweepAxis::list("fault.dead_pixel_fraction",
                                          {0.0, 0.25, 0.5})};
  const scenario::RunReport one = scenario::ScenarioRunner(1).run(spec);
  const scenario::RunReport eight = scenario::ScenarioRunner(8).run(spec);
  ASSERT_EQ(one.points.size(), eight.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, eight.points[i].metrics);
    EXPECT_EQ(one.points[i].rng_draws, eight.points[i].rng_draws);
  }
}

TEST(Fault, FaultedNocSweepIsThreadCountInvariant) {
  scenario::ScenarioSpec spec;
  spec.name = "fault_noc_e2e";
  spec.seed = 709;
  spec.topology = scenario::Topology::kStackNoc;
  spec.noc.dies = 8;
  spec.noc.offered_load = 0.9;
  spec.budget.samples = 4000;
  spec.budget.repro_scaled = false;
  spec.fault.link_failure_probability = 0.1;
  spec.sweep = {scenario::SweepAxis::list("fault.dead_node_fraction",
                                          {0.0, 0.25, 0.5})};
  const scenario::RunReport one = scenario::ScenarioRunner(1).run(spec);
  const scenario::RunReport four = scenario::ScenarioRunner(4).run(spec);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].metrics, four.points[i].metrics);
    EXPECT_EQ(one.points[i].rng_draws, four.points[i].rng_draws);
  }
}

TEST(Fault, DeadPixelDegradationIsMonotoneAndSignificant) {
  // The degraded_link story: erasures rise monotonically with the dead
  // fraction at a starved operating point, and the endpoints separate
  // by far more than Monte Carlo noise.
  scenario::ScenarioSpec spec = starved_link_spec();
  spec.budget.samples = 3000;
  spec.fault.array_pixels = 64;
  spec.sweep = {scenario::SweepAxis::list("fault.dead_pixel_fraction",
                                          {0.0, 0.25, 0.5})};
  const scenario::RunReport r = scenario::ScenarioRunner().run(spec);
  ASSERT_EQ(r.points.size(), 3u);
  std::vector<double> erasure;
  for (const auto& p : r.points) erasure.push_back(r.metric(p, "erasure_rate"));
  EXPECT_LE(erasure[0], erasure[1]);
  EXPECT_LE(erasure[1], erasure[2]);
  // Endpoint z-separation: the clean rate must sit far below the
  // half-dead rate (a pooled two-proportion test would reject equality
  // at any sane alpha; assert via disjoint Wilson-style bounds).
  const auto count = [&](std::size_t i) {
    return static_cast<std::uint64_t>(erasure[i] *
                                          static_cast<double>(r.points[i].samples) +
                                      0.5);
  };
  EXPECT_RATE_LT(count(0), r.points[0].samples, erasure[2] - 0.05, 1e-4);
  EXPECT_RATE_GT(count(2), r.points[2].samples, erasure[0] + 0.05, 1e-4);
}

TEST(Fault, NocNodeFailureDegradesGracefullyWithMacReclaim) {
  scenario::ScenarioSpec spec;
  spec.name = "fault_noc_reclaim";
  spec.seed = 719;
  spec.topology = scenario::Topology::kStackNoc;
  spec.noc.dies = 8;
  spec.noc.mac = "tdma";
  spec.noc.offered_load = 0.95;
  spec.budget.samples = 20000;
  spec.budget.repro_scaled = false;

  const scenario::RunReport clean = scenario::ScenarioRunner().run(spec);
  const double clean_carried = clean.metric(clean.points.front(), "carried_load");

  scenario::ScenarioSpec faulted = spec;
  faulted.fault.dead_node_fraction = 0.5;
  const scenario::RunReport degraded = scenario::ScenarioRunner().run(faulted);
  const double degraded_carried =
      degraded.metric(degraded.points.front(), "carried_load");

  scenario::ScenarioSpec wasteful = faulted;
  wasteful.fault.mac_reclaim = false;
  const scenario::RunReport unreclaimed = scenario::ScenarioRunner().run(wasteful);
  const double unreclaimed_carried =
      unreclaimed.metric(unreclaimed.points.front(), "carried_load");

  // Losing half the sources halves the offered load, so carried load
  // falls -- but gracefully: the survivors still carry traffic.
  EXPECT_LT(degraded_carried, clean_carried);
  EXPECT_GT(degraded_carried, 0.0);
  // TDMA slot reclamation is the response that makes it graceful:
  // without it, dead dies' slots are wasted and the survivors carry
  // strictly less under the same per-die load.
  EXPECT_GT(degraded_carried, unreclaimed_carried);
}

TEST(Fault, WdmDeadChannelReducesAggregateThroughput) {
  scenario::ScenarioSpec spec;
  spec.name = "fault_wdm";
  spec.seed = 727;
  spec.topology = scenario::Topology::kWdm;
  spec.device.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  spec.device.bits_per_symbol = 6;
  spec.budget.samples = 400;
  spec.budget.repro_scaled = false;

  const scenario::RunReport clean = scenario::ScenarioRunner().run(spec);
  const double clean_gbps = clean.metric(clean.points.front(), "aggregate_gbps");
  ASSERT_GT(clean_gbps, 0.0);

  scenario::ScenarioSpec faulted = spec;
  faulted.fault.dead_channel_fraction = 0.25;  // 1 of 4 channels killed
  const scenario::RunReport degraded = scenario::ScenarioRunner().run(faulted);
  const double degraded_gbps =
      degraded.metric(degraded.points.front(), "aggregate_gbps");
  // One dead channel of four removes ~a quarter of the aggregate; the
  // survivors keep working (graceful, not collapsing).
  EXPECT_LT(degraded_gbps, clean_gbps);
  EXPECT_GT(degraded_gbps, 0.5 * clean_gbps);

  // Deterministic: the same faulted spec re-runs to the same numbers.
  const scenario::RunReport again = scenario::ScenarioRunner().run(faulted);
  EXPECT_EQ(again.points.front().metrics, degraded.points.front().metrics);
}

}  // namespace
