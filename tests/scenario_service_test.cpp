// Tests for the scenario service layer: canonical spec hashing, the
// content-addressed result store (round trip, corruption-as-miss,
// age-based GC), cache-hit bit-identity and checkpoint/resume, sharded
// sweeps whose union merges back to the unsharded report exactly,
// pooled multi-seed merging, schema-v2 report document round trips,
// and the shard/cache CLI helpers.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "oci/analysis/report.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/scenario/cli.hpp"
#include "oci/scenario/merge.hpp"
#include "oci/scenario/parse.hpp"
#include "oci/scenario/report_io.hpp"
#include "oci/scenario/runner.hpp"
#include "oci/scenario/serialize.hpp"
#include "oci/scenario/spec.hpp"
#include "oci/scenario/store.hpp"

namespace {

namespace fs = std::filesystem;
using namespace oci;
using scenario::ChunkKey;
using scenario::ChunkRecord;
using scenario::FsResultStore;
using scenario::MergeOptions;
using scenario::RunOptions;
using scenario::RunPoint;
using scenario::RunReport;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::ShardSpec;
using scenario::SweepAxis;
using scenario::Topology;

constexpr std::uint64_t kSeed = 20260726;

/// Pins the process repro scale so budget resolution is deterministic
/// regardless of the CI environment.
struct ScaleGuard {
  explicit ScaleGuard(double s) { analysis::set_repro_scale_for_test(s); }
  ~ScaleGuard() { analysis::set_repro_scale_for_test(std::nullopt); }
};

/// Fresh per-test scratch directory under gtest's temp root.
fs::path scratch_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("oci_service_" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Small fixed-budget sweep: 4 points, no calibration, fast.
ScenarioSpec sweep_spec() {
  ScenarioSpec spec;
  spec.name = "svc_link";
  spec.seed = kSeed;
  spec.topology = Topology::kPointToPoint;
  spec.device.design = link::TdcDesign{64, 4, util::Time::picoseconds(52.0)};
  spec.device.bits_per_symbol = 6;
  spec.device.calibrate = false;
  spec.budget.samples = 600;
  spec.budget.repro_scaled = false;
  spec.sweep.push_back(SweepAxis::list("jitter_ps", {40.0, 90.0, 140.0, 190.0}));
  return spec;
}

/// Same sweep under an adaptive stopping rule: multiple chunks per
/// point, so the cache actually sees per-chunk traffic.
ScenarioSpec adaptive_spec() {
  ScenarioSpec spec = sweep_spec();
  spec.precision.enabled = true;
  spec.precision.metric = "ser";
  spec.precision.target_half_width = 0.02;
  spec.precision.chunk = 200;
  spec.precision.max_samples = 1200;
  return spec;
}

/// Importance-sampled variant of the adaptive sweep: every chunk now
/// carries likelihood-ratio weight state through the store, the shard
/// planner and the merge path.
ScenarioSpec tilted_spec() {
  ScenarioSpec spec = adaptive_spec();
  spec.variance.kind = rare::Kind::kTilt;
  spec.variance.jitter_tilt = 1.8;
  return spec;
}

/// Bitwise equality of everything deterministic in two reports (wall
/// clock and cache counters excluded by design).
void expect_identical(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.spec_hash, b.spec_hash);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.adaptive, b.adaptive);
  EXPECT_EQ(a.points_total, b.points_total);
  EXPECT_EQ(a.axis_names, b.axis_names);
  EXPECT_EQ(a.metric_names, b.metric_names);
  EXPECT_EQ(a.metric_kinds, b.metric_kinds);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const RunPoint& pa = a.points[i];
    const RunPoint& pb = b.points[i];
    EXPECT_EQ(pa.point_index, pb.point_index);
    EXPECT_EQ(pa.coordinate, pb.coordinate);
    EXPECT_EQ(pa.samples, pb.samples) << "point " << i;
    EXPECT_EQ(pa.chunks, pb.chunks) << "point " << i;
    EXPECT_EQ(pa.rng_draws, pb.rng_draws) << "point " << i;
    EXPECT_EQ(pa.metrics, pb.metrics) << "point " << i;
    ASSERT_EQ(pa.estimates.size(), pb.estimates.size());
    for (std::size_t m = 0; m < pa.estimates.size(); ++m) {
      EXPECT_EQ(pa.estimates[m].value, pb.estimates[m].value) << i << "/" << m;
      EXPECT_EQ(pa.estimates[m].ci_low, pb.estimates[m].ci_low) << i << "/" << m;
      EXPECT_EQ(pa.estimates[m].ci_high, pb.estimates[m].ci_high) << i << "/" << m;
      EXPECT_EQ(pa.estimates[m].n_samples, pb.estimates[m].n_samples) << i << "/" << m;
    }
    // Likelihood-ratio weight state (all zero for crude runs).
    EXPECT_EQ(pa.weights.sum(), pb.weights.sum()) << "point " << i;
    EXPECT_EQ(pa.weights.sum_sq(), pb.weights.sum_sq()) << "point " << i;
    EXPECT_EQ(pa.weights.count(), pb.weights.count()) << "point " << i;
    EXPECT_EQ(pa.err_weight_sq, pb.err_weight_sq) << "point " << i;
  }
}

// -- Canonical hashing --------------------------------------------------

TEST(SpecHash, StableAcrossTextualFormatting) {
  const ScenarioSpec a = scenario::parse_spec_text(
      "name = h\n"
      "topology = point-to-point\n"
      "bits_per_symbol = 6\n"
      "samples = 600\n"
      "sweep.jitter_ps = 40, 80\n");
  // Same experiment: keys reordered, comments, stray whitespace.
  const ScenarioSpec b = scenario::parse_spec_text(
      "# a comment\n"
      "sweep.jitter_ps =   40,80\n"
      "samples=600\n\n"
      "bits_per_symbol = 6   # trailing comment\n"
      "topology = point-to-point\n"
      "name = h\n");
  EXPECT_EQ(scenario::spec_hash(a), scenario::spec_hash(b));
}

TEST(SpecHash, IgnoresSeedAndDescription) {
  ScenarioSpec a = sweep_spec();
  ScenarioSpec b = sweep_spec();
  b.seed = kSeed + 1;  // part of the store KEY, not the hash
  b.description = "same experiment, different words";
  EXPECT_EQ(scenario::spec_hash(a), scenario::spec_hash(b));
}

TEST(SpecHash, ChangesOnEverySemanticField) {
  const std::string base = scenario::spec_hash(sweep_spec());
  std::set<std::string> hashes{base};
  const auto mutated = [&](auto&& mutate) {
    ScenarioSpec s = sweep_spec();
    mutate(s);
    return scenario::spec_hash(s);
  };
  hashes.insert(mutated([](ScenarioSpec& s) { s.name = "other"; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.device.bits_per_symbol = 4; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.device.calibrate = true; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.budget.samples = 601; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.budget.repro_scaled = true; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.sweep[0].values.push_back(240.0); }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.sweep[0].param = "dcr_hz"; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.precision.enabled = true; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.fec = scenario::FecKind::kHamming; }));
  hashes.insert(mutated([](ScenarioSpec& s) {
    s.device.channel_transmittance = 0.25;
  }));
  // Fault injection changes the simulated hardware, so every fault.*
  // knob -- including the realisation salt -- must re-key the cache.
  hashes.insert(mutated([](ScenarioSpec& s) { s.fault.dead_pixel_fraction = 0.25; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.fault.dark_window_probability = 0.1; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.fault.tdc_drift_c = 15.0; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.fault.salt = 1; }));
  // Rare-event acceleration changes what every chunk simulates, so
  // every variance.* knob must re-key the cache too.
  hashes.insert(mutated([](ScenarioSpec& s) { s.variance.kind = rare::Kind::kTilt; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.variance.kind = rare::Kind::kSplit; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.variance.jitter_tilt = 1.8; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.variance.noise_tilt = 4.0; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.variance.levels = "3:2:1"; }));
  hashes.insert(mutated([](ScenarioSpec& s) { s.variance.split_levels = 6; }));
  // Every mutation produced a distinct hash (base + 20 variants).
  EXPECT_EQ(hashes.size(), 21u);
  for (const std::string& h : hashes) EXPECT_EQ(h.size(), 64u);
}

TEST(SpecHash, DependsOnAmbientReproScale) {
  // The resolved sample counts depend on the process repro scale, so
  // cached chunks from different scales must never collide.
  ScenarioSpec spec = sweep_spec();
  spec.budget.repro_scaled = true;
  std::string full, smoke;
  {
    ScaleGuard guard(1.0);
    full = scenario::spec_hash(spec);
  }
  {
    ScaleGuard guard(0.05);
    smoke = scenario::spec_hash(spec);
  }
  EXPECT_NE(full, smoke);
}

// -- Result store -------------------------------------------------------

TEST(ResultStore, RoundTripsChunkRecords) {
  const fs::path dir = scratch_dir("store_rt");
  const FsResultStore store(dir.string());
  const ChunkKey key{"a1b2", kSeed, 3, 7};
  const ChunkRecord rec{600, 41234, {0.125, 3.0e-9, 1.0 / 3.0}};
  EXPECT_FALSE(store.load(key).has_value());
  store.save(key, rec);
  const auto back = store.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->samples, rec.samples);
  EXPECT_EQ(back->rng_draws, rec.rng_draws);
  EXPECT_EQ(back->metrics, rec.metrics);  // %.17g: bitwise round trip
  // Distinct keys are distinct entries.
  EXPECT_FALSE(store.load(ChunkKey{"a1b2", kSeed, 3, 8}).has_value());
  EXPECT_FALSE(store.load(ChunkKey{"a1b2", kSeed + 1, 3, 7}).has_value());
}

TEST(ResultStore, CorruptEntriesReadAsMiss) {
  const fs::path dir = scratch_dir("store_corrupt");
  const FsResultStore store(dir.string());
  const ChunkKey key{"feed", kSeed, 0, 0};
  store.save(key, ChunkRecord{100, 5, {1.0, 2.0}});
  ASSERT_TRUE(store.load(key).has_value());
  {  // truncate: fewer metric lines than the header promises
    std::ofstream out(store.path_of(key));
    out << "oci-chunk-v1 samples=100 rng_draws=5 metrics=2\n1.0\n";
  }
  EXPECT_FALSE(store.load(key).has_value());
  {  // garbage
    std::ofstream out(store.path_of(key));
    out << "not a chunk at all\n";
  }
  EXPECT_FALSE(store.load(key).has_value());
}

TEST(ResultStore, GcRemovesOnlyOldEntries) {
  const fs::path dir = scratch_dir("store_gc");
  const FsResultStore store(dir.string());
  const ChunkKey young{"young", kSeed, 0, 0};
  const ChunkKey old{"old", kSeed, 0, 0};
  store.save(young, ChunkRecord{1, 1, {0.5}});
  store.save(old, ChunkRecord{1, 1, {0.5}});
  // Age the second entry three days.
  const auto stamp = fs::last_write_time(store.path_of(old)) -
                     std::chrono::duration_cast<fs::file_time_type::duration>(
                         std::chrono::hours(72));
  fs::last_write_time(store.path_of(old), stamp);

  const auto dry = scenario::cache_gc(dir.string(), 1.0, /*dry_run=*/true);
  EXPECT_EQ(dry.scanned, 2u);
  EXPECT_EQ(dry.removed, 1u);
  EXPECT_TRUE(store.load(old).has_value());  // dry run touches nothing

  const auto gc = scenario::cache_gc(dir.string(), 1.0);
  EXPECT_EQ(gc.removed, 1u);
  EXPECT_EQ(gc.kept, 1u);
  EXPECT_GT(gc.bytes_freed, 0u);
  EXPECT_FALSE(store.load(old).has_value());
  EXPECT_TRUE(store.load(young).has_value());
  EXPECT_FALSE(fs::exists(dir / "old"));  // emptied dirs pruned
}

// -- Cache semantics ----------------------------------------------------

TEST(ScenarioService, EngineRevisionBumpInvalidatesTheWholeCache) {
  // Entries live under r<kEngineRevision>: a revision bump (new engine
  // code, same spec hash) must be a FULL miss, never a stale hit.
  const fs::path dir = scratch_dir("store_rev");
  const FsResultStore store(dir.string());
  RunOptions options;
  options.store = &store;
  const ScenarioSpec spec = adaptive_spec();
  const RunReport cold = ScenarioRunner(2).run(spec, options);
  EXPECT_GT(cold.cache_misses, 0u);
  const fs::path live = dir / ("r" + std::to_string(scenario::kEngineRevision));
  ASSERT_TRUE(fs::exists(live));

  // Simulate a store written by the PREVIOUS engine revision by moving
  // the whole tree under r<rev-1>. The warm run serves nothing from it
  // and re-simulates every chunk, bit-identically.
  const fs::path stale =
      dir / ("r" + std::to_string(scenario::kEngineRevision - 1));
  fs::rename(live, stale);
  const RunReport warm = ScenarioRunner(2).run(spec, options);
  EXPECT_EQ(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
  expect_identical(cold, warm);

  // cache_gc prunes the dead revision wholesale -- even entries far
  // younger than max_age -- and keeps the freshly rewritten live tree.
  const auto gc = scenario::cache_gc(dir.string(), /*max_age_days=*/365.0);
  EXPECT_GT(gc.removed, 0u);
  EXPECT_FALSE(fs::exists(stale));
  ASSERT_TRUE(fs::exists(live));
  const RunReport rewarm = ScenarioRunner(2).run(spec, options);
  EXPECT_EQ(rewarm.cache_misses, 0u);
  EXPECT_EQ(rewarm.cache_hits, cold.cache_misses);
}

TEST(ScenarioService, SaveFailuresAreCountedAndHarmless) {
  const fs::path dir = scratch_dir("store_blocked");
  const FsResultStore store(dir.string());
  // Block the store with a regular FILE where the revision directory
  // must go: every save's create_directories fails, loads simply miss.
  std::ofstream(dir / ("r" + std::to_string(scenario::kEngineRevision))) << "x";
  RunOptions options;
  options.store = &store;
  const ScenarioSpec spec = adaptive_spec();
  const RunReport blocked = ScenarioRunner(2).run(spec, options);
  EXPECT_EQ(blocked.cache_hits, 0u);
  EXPECT_GT(blocked.cache_misses, 0u);
  // Every simulated chunk failed to persist, and each failure was
  // counted -- not swallowed.
  EXPECT_EQ(blocked.cache_save_failures, blocked.cache_misses);

  // The broken cache is invisible to the physics: an uncached run
  // produces the identical report.
  const RunReport uncached = ScenarioRunner(2).run(spec);
  EXPECT_EQ(uncached.cache_save_failures, 0u);
  expect_identical(blocked, uncached);

  // The counter survives the schema-v2 report document round trip.
  const fs::path path = scratch_dir("store_blocked_io") / "report.json";
  scenario::report_io::save(blocked, path.string());
  const RunReport back = scenario::report_io::load(path.string());
  EXPECT_EQ(back.cache_save_failures, blocked.cache_save_failures);
}

TEST(ScenarioService, WarmCacheIsBitIdenticalAcrossThreadCounts) {
  const fs::path dir = scratch_dir("cache_warm");
  const FsResultStore store(dir.string());
  RunOptions options;
  options.store = &store;
  const ScenarioSpec spec = adaptive_spec();

  const RunReport cold = ScenarioRunner(1).run(spec, options);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.cache_misses, 0u);

  // Warm re-runs -- single-threaded and wide -- serve every chunk from
  // the store and reproduce the cold report exactly.
  for (const std::size_t threads : {1u, 8u}) {
    const RunReport warm = ScenarioRunner(threads).run(spec, options);
    EXPECT_EQ(warm.cache_misses, 0u) << threads << " threads";
    EXPECT_EQ(warm.cache_hits, cold.cache_misses) << threads << " threads";
    expect_identical(cold, warm);
  }
  // And the cache is transparent: an uncached run agrees too.
  const RunReport uncached = ScenarioRunner(2).run(spec);
  EXPECT_EQ(uncached.cache_hits + uncached.cache_misses, 0u);
  expect_identical(cold, uncached);
}

TEST(ScenarioService, ResumesAfterLostChunks) {
  // A killed sweep = a store holding a chunk subset. Deleting files and
  // re-running must recompute exactly the holes, bit-identically.
  const fs::path dir = scratch_dir("cache_resume");
  const FsResultStore store(dir.string());
  RunOptions options;
  options.store = &store;
  const ScenarioSpec spec = adaptive_spec();
  const RunReport cold = ScenarioRunner(2).run(spec, options);

  std::vector<fs::path> chunks;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) chunks.push_back(entry.path());
  }
  ASSERT_EQ(chunks.size(), cold.cache_misses);
  ASSERT_GE(chunks.size(), 4u);
  for (std::size_t i = 0; i < chunks.size(); i += 3) fs::remove(chunks[i]);
  const std::size_t holes = (chunks.size() + 2) / 3;

  const RunReport resumed = ScenarioRunner(2).run(spec, options);
  EXPECT_EQ(resumed.cache_misses, holes);
  EXPECT_EQ(resumed.cache_hits, chunks.size() - holes);
  expect_identical(cold, resumed);
}

TEST(ScenarioService, CheckedInSpecWarmRunDoesZeroChunks) {
  // Acceptance check on the real checked-in spec at smoke scale: the
  // second run of scenarios/link_jitter.spec must simulate nothing.
  ScaleGuard guard(0.02);
  ScenarioSpec spec = scenario::parse_spec_file(std::string(OCI_SOURCE_DIR) +
                                                "/scenarios/link_jitter.spec");
  spec.validate();
  const fs::path dir = scratch_dir("cache_spec");
  const FsResultStore store(dir.string());
  RunOptions options;
  options.store = &store;
  const RunReport cold = ScenarioRunner(2).run(spec, options);
  EXPECT_GT(cold.cache_misses, 0u);
  const RunReport warm = ScenarioRunner(2).run(spec, options);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  expect_identical(cold, warm);
}

// -- Shards and merge ---------------------------------------------------

TEST(ScenarioService, ShardUnionMergeEqualsUnshardedRun) {
  const ScenarioSpec spec = adaptive_spec();
  const RunReport full = ScenarioRunner(2).run(spec);

  for (const std::size_t n_shards : {2u, 3u}) {
    std::vector<RunReport> parts;
    for (std::size_t i = 0; i < n_shards; ++i) {
      RunOptions options;
      options.shard = ShardSpec{i, n_shards};
      parts.push_back(ScenarioRunner(2).run(spec, options));
      EXPECT_EQ(parts.back().points_total, full.points.size());
      EXPECT_LT(parts.back().points.size(), full.points.size());
    }
    const RunReport merged = scenario::merge_reports(parts);
    expect_identical(full, merged);
  }
}

TEST(ScenarioService, WeightedShardUnionMergeEqualsUnshardedRun) {
  // Weight moments must pool across shards exactly like the rate
  // accumulators -- summed, never averaged -- or the merged n_eff and
  // variance diagnostics silently drift from the unsharded truth.
  const ScenarioSpec spec = tilted_spec();
  const RunReport full = ScenarioRunner(2).run(spec);
  for (const RunPoint& p : full.points) {
    EXPECT_TRUE(p.weights.active());
    EXPECT_EQ(p.weights.count(), p.samples);
  }

  for (const std::size_t n_shards : {2u, 3u}) {
    std::vector<RunReport> parts;
    for (std::size_t i = 0; i < n_shards; ++i) {
      RunOptions options;
      options.shard = ShardSpec{i, n_shards};
      parts.push_back(ScenarioRunner(2).run(spec, options));
    }
    const RunReport merged = scenario::merge_reports(parts);
    expect_identical(full, merged);
  }
}

TEST(ScenarioService, WeightedChunksRoundTripThroughTheCache) {
  // Cold run persists every tilted chunk (metrics AND the trailing
  // weights line); the warm run must serve all of them back and land
  // on the bit-identical report.
  const fs::path dir = scratch_dir("cache_weighted");
  const FsResultStore store(dir.string());
  RunOptions options;
  options.store = &store;
  const ScenarioSpec spec = tilted_spec();

  const RunReport cold = ScenarioRunner(2).run(spec, options);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.cache_misses, 0u);

  const RunReport warm = ScenarioRunner(8).run(spec, options);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  expect_identical(cold, warm);

  // The records on disk really carry the weight state: a weighted
  // chunk whose weights line is torn off must read as a miss, not as
  // a crude chunk.
  std::vector<fs::path> chunks;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) chunks.push_back(entry.path());
  }
  ASSERT_EQ(chunks.size(), cold.cache_misses);
  std::size_t weighted = 0;
  for (const fs::path& chunk : chunks) {
    std::ifstream in(chunk);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (text.find("\nweights ") != std::string::npos) ++weighted;
  }
  EXPECT_EQ(weighted, chunks.size());
}

TEST(ScenarioService, MergePoolsRunsFromDifferentSeeds) {
  const ScenarioSpec spec = sweep_spec();
  ScenarioSpec other = spec;
  other.seed = kSeed + 17;
  const RunReport a = ScenarioRunner(2).run(spec);
  const RunReport b = ScenarioRunner(2).run(other);
  const RunReport merged = scenario::merge_reports({a, b});

  EXPECT_EQ(merged.seed, 0u);  // mixed seeds -> sentinel
  ASSERT_EQ(merged.points.size(), a.points.size());
  const std::size_t ser = 0;  // first point-to-point metric is "ser"
  ASSERT_EQ(merged.metric_names[ser], "ser");
  for (std::size_t i = 0; i < merged.points.size(); ++i) {
    const RunPoint& p = merged.points[i];
    EXPECT_EQ(p.samples, a.points[i].samples + b.points[i].samples);
    // Pooled counts, not averaged estimates.
    EXPECT_EQ(p.rates[ser].trials(),
              a.points[i].rates[ser].trials() + b.points[i].rates[ser].trials());
    EXPECT_EQ(p.rates[ser].successes(), a.points[i].rates[ser].successes() +
                                            b.points[i].rates[ser].successes());
    const analysis::Estimate pooled =
        p.rates[ser].wilson(merged.confidence_z);
    EXPECT_EQ(p.estimates[ser].value, pooled.value);
    EXPECT_EQ(p.estimates[ser].ci_low, pooled.ci_low);
    EXPECT_EQ(p.estimates[ser].ci_high, pooled.ci_high);
    // More data can only tighten the interval.
    EXPECT_LE(p.estimates[ser].half_width(),
              a.points[i].estimates[ser].half_width() + 1e-12);
  }
}

TEST(ScenarioService, MergeRejectsBadCombinations) {
  const ScenarioSpec spec = sweep_spec();
  const RunReport full = ScenarioRunner(2).run(spec);
  RunOptions shard0;
  shard0.shard = ShardSpec{0, 2};
  const RunReport part = ScenarioRunner(2).run(spec, shard0);

  // Same seed twice: the same samples twice, never poolable.
  EXPECT_THROW((void)scenario::merge_reports({full, full}), std::invalid_argument);
  // A lone shard misses points...
  EXPECT_THROW((void)scenario::merge_reports({part}), std::invalid_argument);
  // ...unless explicitly allowed.
  MergeOptions lenient;
  lenient.allow_partial = true;
  const RunReport partial = scenario::merge_reports({part}, lenient);
  EXPECT_EQ(partial.points.size(), part.points.size());
  EXPECT_EQ(partial.points_total, full.points.size());
  // Different experiments (hash mismatch) never merge.
  ScenarioSpec changed = spec;
  changed.device.bits_per_symbol = 4;
  const RunReport other = ScenarioRunner(2).run(changed);
  EXPECT_THROW((void)scenario::merge_reports({full, other}), std::invalid_argument);
  // Nothing to merge at all.
  EXPECT_THROW((void)scenario::merge_reports({}), std::invalid_argument);
}

// -- Report document round trip ----------------------------------------

TEST(ReportIo, RoundTripsThroughDisk) {
  const ScenarioSpec spec = adaptive_spec();
  const RunReport report = ScenarioRunner(2).run(spec);
  const fs::path path = scratch_dir("report_io") / "report.json";
  scenario::report_io::save(report, path.string());
  const RunReport back = scenario::report_io::load(path.string());
  expect_identical(report, back);
  EXPECT_EQ(back.confidence_z, report.confidence_z);
  // The reconstructed accumulators are live: merging a loaded shard
  // pair behaves exactly like merging in-memory reports.
  RunOptions s0, s1;
  s0.shard = ShardSpec{0, 2};
  s1.shard = ShardSpec{1, 2};
  const fs::path p0 = scratch_dir("report_io_s0") / "s0.json";
  const fs::path p1 = scratch_dir("report_io_s1") / "s1.json";
  scenario::report_io::save(ScenarioRunner(2).run(spec, s0), p0.string());
  scenario::report_io::save(ScenarioRunner(2).run(spec, s1), p1.string());
  const RunReport merged = scenario::merge_reports(
      {scenario::report_io::load(p0.string()), scenario::report_io::load(p1.string())});
  expect_identical(report, merged);
}

TEST(ReportIo, EmptyAccumulatorStateRoundTrips) {
  // Zero-chunk accumulator state is legal on disk (a point whose mean
  // metrics never accumulated): the loader must reconstruct the EMPTY
  // accumulator -- finite, merge-safe -- not NaN moments.
  const ScenarioSpec spec = adaptive_spec();
  RunReport report = ScenarioRunner(2).run(spec);
  ASSERT_FALSE(report.points.empty());
  for (auto& m : report.points[0].means) m = analysis::MeanAccumulator();
  for (auto& r : report.points[0].rates) r = analysis::RateAccumulator();

  const fs::path path = scratch_dir("report_io_empty") / "report.json";
  scenario::report_io::save(report, path.string());
  const RunReport back = scenario::report_io::load(path.string());
  ASSERT_EQ(back.points[0].means.size(), report.points[0].means.size());
  for (const auto& m : back.points[0].means) {
    EXPECT_EQ(m.chunks(), 0u);
    EXPECT_TRUE(std::isfinite(m.interval().value));
    EXPECT_DOUBLE_EQ(m.interval().half_width(), 0.0);
  }
  for (const auto& r : back.points[0].rates) {
    EXPECT_EQ(r.trials(), 0u);
    EXPECT_TRUE(std::isfinite(r.wilson().ci_high));
  }

  // And the reconstruction is live: pooling the emptied point with a
  // different-seed run behaves like an in-memory empty accumulator.
  ScenarioSpec other = spec;
  other.seed = kSeed + 1;
  const RunReport pooled =
      scenario::merge_reports({back, ScenarioRunner(2).run(other)});
  for (const auto& p : pooled.points) {
    for (const auto& e : p.estimates) {
      EXPECT_TRUE(std::isfinite(e.value));
      EXPECT_TRUE(std::isfinite(e.ci_low) && std::isfinite(e.ci_high));
    }
  }
}

TEST(ReportIo, LoadRejectsMalformedDocuments) {
  const fs::path dir = scratch_dir("report_io_bad");
  const auto write = [&](const char* name, const std::string& text) {
    const fs::path p = dir / name;
    std::ofstream(p) << text;
    return p.string();
  };
  EXPECT_THROW((void)scenario::report_io::load((dir / "absent.json").string()),
               std::runtime_error);
  EXPECT_THROW((void)scenario::report_io::load(write("trunc.json", "{ \"schema")),
               std::runtime_error);
  EXPECT_THROW((void)scenario::report_io::load(
                   write("schema.json", "{ \"schema_version\": 3, \"results\": [] }")),
               std::runtime_error);
  EXPECT_THROW(
      (void)scenario::report_io::load(write(
          "noresults.json",
          "{ \"schema_version\": 2, \"binary\": \"scenario_x\", \"config\": {} }")),
      std::runtime_error);
}

// -- CLI helpers --------------------------------------------------------

TEST(ScenarioCli, ParsesShardSpecs) {
  const ShardSpec s = scenario::parse_shard("1/4");
  EXPECT_EQ(s.index, 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_TRUE(s.active());
  EXPECT_FALSE(scenario::parse_shard("0/1").active());
  for (const char* bad : {"", "2", "a/2", "1/b", "1/2x", "-1/2", "1/-2", "2/2",
                          "3/2", "0/0", "1/", "/2"}) {
    EXPECT_THROW((void)scenario::parse_shard(bad), std::invalid_argument) << bad;
  }
}

TEST(ScenarioCli, ConsumesShardAndCacheArgs) {
  const char* saved = std::getenv("OCI_SCENARIO_CACHE");
  const std::string saved_value = saved ? saved : "";
  ::unsetenv("OCI_SCENARIO_CACHE");

  std::vector<std::string> args = {"tool", "spec.file", "--shard=1/2",
                                   "--cache=/tmp/c", "--out=x.json"};
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  int argc = static_cast<int>(argv.size());

  const auto shard = scenario::consume_shard_arg(argc, argv.data());
  ASSERT_TRUE(shard.has_value());
  EXPECT_EQ(shard->index, 1u);
  EXPECT_EQ(shard->count, 2u);
  const auto cache = scenario::resolve_cache_dir(argc, argv.data());
  ASSERT_TRUE(cache.has_value());
  EXPECT_EQ(*cache, "/tmp/c");
  // Both consumed and re-exported; unrelated args intact.
  EXPECT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "spec.file");
  EXPECT_STREQ(argv[2], "--out=x.json");
  EXPECT_STREQ(std::getenv("OCI_SCENARIO_CACHE"), "/tmp/c");

  ::unsetenv("OCI_SCENARIO_CACHE");
  // Env fallback when no flag is present.
  ::setenv("OCI_SCENARIO_CACHE", "/tmp/from_env", 1);
  int argc2 = 1;
  EXPECT_EQ(scenario::resolve_cache_dir(argc2, argv.data()).value(), "/tmp/from_env");
  if (saved) {
    ::setenv("OCI_SCENARIO_CACHE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("OCI_SCENARIO_CACHE");
  }

  // Garbled values throw, naming the flag.
  std::vector<std::string> bad = {"tool", "--shard=9/3"};
  std::vector<char*> bad_argv;
  for (std::string& a : bad) bad_argv.push_back(a.data());
  int bad_argc = static_cast<int>(bad_argv.size());
  EXPECT_THROW((void)scenario::consume_shard_arg(bad_argc, bad_argv.data()),
               std::invalid_argument);
}

TEST(ScenarioService, RejectsInvalidShardOptions) {
  const ScenarioSpec spec = sweep_spec();
  RunOptions zero;
  zero.shard = ShardSpec{0, 0};
  EXPECT_THROW((void)ScenarioRunner(1).run(spec, zero), std::invalid_argument);
  RunOptions oob;
  oob.shard = ShardSpec{2, 2};
  EXPECT_THROW((void)ScenarioRunner(1).run(spec, oob), std::invalid_argument);
}

}  // namespace
