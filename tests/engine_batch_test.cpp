// Batched window engine contracts (LinkEngine::simulate_windows and the
// batched drivers), pinned bit-for-bit:
//
//  * Kernel equivalence -- every ISA kernel the CPU can run (scalar,
//    SSE4.2, AVX2) produces BIT-IDENTICAL per-lane outputs and draw
//    counts. The kernels share one templated implementation built from
//    exactly-rounded operations only, so any divergence is a real bug.
//  * Lane decomposability -- a lane's result is a pure function of
//    (engine config, stream root, lane index): batches can be split,
//    sharded across threads, or replayed lane-by-lane without changing
//    a single bit.
//  * Sequential-carry equivalence -- the batched driver's speculative
//    dead-time carry (flat speculation + lane replay on a phantom first
//    fire) reproduces exactly what a window-by-window sequential
//    simulation with true carries produces.
//
// Envelope coverage: rectangular and exponential ride the SIMD lanes;
// Gaussian routes through the scalar tail under every table -- all
// three appear in the config matrix, as do passive quench and a
// photon-starved noisy link.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "oci/link/kernels.hpp"
#include "oci/link/link_engine.hpp"
#include "oci/link/optical_link.hpp"
#include "oci/util/batch_rng.hpp"

namespace {

using namespace oci;
using link::EngineBatchScratch;
using link::LinkEngine;
using link::LinkRunStats;
using link::OpticalLink;
using link::OpticalLinkConfig;
using link::WindowResult;
using util::BatchRngStream;
using util::Frequency;
using util::Power;
using util::RngStream;
using util::Time;

OpticalLinkConfig base_config() {
  OpticalLinkConfig c;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 5;
  c.channel_transmittance = 0.5;
  c.led.peak_power = Power::microwatts(50.0);
  c.spad.dcr_at_ref = Frequency::hertz(100.0);
  c.spad.afterpulse_probability = 0.005;
  c.calibrate = false;
  return c;
}

OpticalLinkConfig config_for(int param) {
  OpticalLinkConfig c = base_config();
  switch (param) {
    case 0:  // bright rectangular (SIMD path)
      break;
    case 1:  // photon-starved and noisy
      c.led.peak_power = Power::nanowatts(300.0);
      c.spad.dcr_at_ref = Frequency::kilohertz(200.0);
      c.background_rate = Frequency::megahertz(2.0);
      break;
    case 2:  // paralyzable dead time + heavy afterpulsing
      c.spad.quench = spad::QuenchMode::kPassive;
      c.spad.afterpulse_probability = 0.05;
      break;
    case 3:  // exponential envelope (SIMD path, log-based inverse CDF)
      c.led.shape = photonics::PulseShape::kExponential;
      break;
    default:  // Gaussian envelope (scalar tail under every table)
      c.led.shape = photonics::PulseShape::kGaussian;
      break;
  }
  return c;
}

/// Deterministic batch inputs: every PPM slot appears, and every 7th
/// lane starts inside a blind carry.
std::vector<WindowResult> make_windows(const OpticalLink& link, std::size_t n) {
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  const double dead_s = link.detector().params().dead_time.seconds();
  std::vector<WindowResult> ws(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws[i].pulse_start_s = link.ppm().encode(i & max_symbol).seconds();
    ws[i].dead_in_s = (i % 7 == 3) ? dead_s * 0.25 : 0.0;
  }
  return ws;
}

void expect_same_windows(const std::vector<WindowResult>& a,
                         const std::vector<WindowResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    EXPECT_EQ(a[i].fired, b[i].fired);
    EXPECT_EQ(a[i].first_is_signal, b[i].first_is_signal);
    EXPECT_EQ(a[i].first_fire_s, b[i].first_fire_s);
    EXPECT_EQ(a[i].first_observed_s, b[i].first_observed_s);
    EXPECT_EQ(a[i].last_fire_s, b[i].last_fire_s);
    EXPECT_EQ(a[i].dead_out_s, b[i].dead_out_s);
    EXPECT_EQ(a[i].rng_draws, b[i].rng_draws);
  }
}

class EngineBatch : public ::testing::TestWithParam<int> {};

TEST_P(EngineBatch, EveryKernelBitIdenticalPerLane) {
  RngStream process(1009);
  const OpticalLink link(config_for(GetParam()), process);
  const LinkEngine engine(link);
  // 261 = 65 AVX2 registers + 1 remainder lane: exercises the vector
  // body AND the scalar-tail handoff of every kernel.
  const std::vector<WindowResult> base = make_windows(link, 261);
  const BatchRngStream lanes(0x00C1BA7CE5ull, "engine-batch-test");

  EngineBatchScratch ref_scratch;
  std::vector<WindowResult> ref = base;
  engine.simulate_windows(ref, lanes, ref_scratch, 0, &link::kernels::scalar_kernels());

  for (const link::kernels::KernelTable* table : link::kernels::available_kernels()) {
    SCOPED_TRACE(table->name);
    EngineBatchScratch scratch;
    std::vector<WindowResult> got = base;
    engine.simulate_windows(got, lanes, scratch, 0, table);
    expect_same_windows(ref, got);
  }
}

TEST_P(EngineBatch, LanesDecomposeToSingleWindowBatches) {
  RngStream process(1013);
  const OpticalLink link(config_for(GetParam()), process);
  const LinkEngine engine(link);
  const std::vector<WindowResult> base = make_windows(link, 64);
  const BatchRngStream lanes(0xDEC0113ull, "engine-batch-test");

  EngineBatchScratch scratch;
  std::vector<WindowResult> whole = base;
  engine.simulate_windows(whole, lanes, scratch);

  std::vector<WindowResult> singles = base;
  for (std::size_t i = 0; i < singles.size(); ++i) {
    engine.simulate_windows({&singles[i], 1}, lanes, scratch, i);
  }
  expect_same_windows(whole, singles);
}

TEST_P(EngineBatch, SplitBatchesMatchWholeBatch) {
  RngStream process(1019);
  const OpticalLink link(config_for(GetParam()), process);
  const LinkEngine engine(link);
  const std::vector<WindowResult> base = make_windows(link, 100);
  const BatchRngStream lanes(77110021ull, "engine-batch-test");

  EngineBatchScratch scratch;
  std::vector<WindowResult> whole = base;
  engine.simulate_windows(whole, lanes, scratch);

  std::vector<WindowResult> split = base;
  engine.simulate_windows(std::span<WindowResult>(split.data(), 60), lanes, scratch, 0);
  engine.simulate_windows(std::span<WindowResult>(split.data() + 60, 40), lanes, scratch,
                          60);
  expect_same_windows(whole, split);
}

TEST_P(EngineBatch, ThreadShardsMatchSingleThread) {
  RngStream process(1021);
  const OpticalLink link(config_for(GetParam()), process);
  const LinkEngine engine(link);
  constexpr std::size_t kLanes = 256;
  constexpr std::size_t kThreads = 8;
  const std::vector<WindowResult> base = make_windows(link, kLanes);
  const BatchRngStream lanes(424242ull, "engine-batch-test");

  EngineBatchScratch scratch;
  std::vector<WindowResult> single = base;
  engine.simulate_windows(single, lanes, scratch);

  // simulate_windows with a caller-owned scratch is const and
  // thread-safe: shard the same batch across 8 threads.
  std::vector<WindowResult> sharded = base;
  std::vector<std::thread> workers;
  constexpr std::size_t kShard = kLanes / kThreads;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      EngineBatchScratch local;
      engine.simulate_windows(
          std::span<WindowResult>(sharded.data() + w * kShard, kShard), lanes, local,
          w * kShard);
    });
  }
  for (std::thread& t : workers) t.join();
  expect_same_windows(single, sharded);
}

INSTANTIATE_TEST_SUITE_P(Configs, EngineBatch, ::testing::Values(0, 1, 2, 3, 4));

// ---------- driver-level contracts ----------

TEST(EngineBatchDriver, SpeculativeCarryMatchesSequentialSimulation) {
  // Paper-exact windows (no guard) on a bright link make the dead time
  // spill past the symbol period whenever a pulse lands late in the
  // window -- the hostile case for the driver's flat-carry speculation.
  OpticalLinkConfig cfg = base_config();
  cfg.inter_symbol_guard = Time::zero();
  RngStream process(1031);
  const OpticalLink link(cfg, process);
  const LinkEngine engine(link);

  // Late/early alternation forces carry collisions; a counter-scrambled
  // tail mixes in every other slot (and crosses a batch boundary:
  // 600 > 2 x kEngineBatch).
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  std::vector<std::uint64_t> symbols;
  for (std::size_t j = 0; j < 300; ++j) {
    symbols.push_back(link.ppm().symbol_for_slot(j % 2 == 0 ? 31 : 0));
  }
  util::CounterRng scramble(903u);
  for (std::size_t j = 0; j < 300; ++j) {
    symbols.push_back(scramble.next_u64() & max_symbol);
  }

  // Reference: window-by-window simulation with TRUE carries, using the
  // same root derivation as the batched driver.
  RngStream seed_a(1033);
  const std::uint64_t root = seed_a.engine()();
  const BatchRngStream lanes(root, "engine-windows");
  const double period_s = link.symbol_period().seconds();
  const double dead_s = link.detector().params().dead_time.seconds();
  EngineBatchScratch scratch;
  std::vector<bool> erased_seq;
  double carry = 0.0;
  for (std::size_t j = 0; j < symbols.size(); ++j) {
    WindowResult w;
    w.pulse_start_s = link.ppm().encode(symbols[j]).seconds();
    w.dead_in_s = carry;
    engine.simulate_windows({&w, 1}, lanes, scratch, j);
    erased_seq.push_back(!w.fired);
    carry = w.fired ? w.last_fire_s + dead_s - period_s : carry - period_s;
  }

  // Batched driver over the same symbols and the same seed.
  RngStream seed_b(1033);
  std::vector<bool> erased_batch;
  const LinkRunStats stats = engine.run_sequence(
      symbols, seed_b, [&](std::size_t, const LinkEngine::SymbolOutcome& out) {
        erased_batch.push_back(out.erased);
      });

  EXPECT_EQ(erased_seq, erased_batch);
  EXPECT_GT(stats.erasures, 0u);  // the hostile case actually occurred
}

TEST(EngineBatchDriver, KernelTableSanity) {
  const auto tables = link::kernels::available_kernels();
  ASSERT_FALSE(tables.empty());
  EXPECT_STREQ(tables.front()->name, "scalar");
  for (const link::kernels::KernelTable* t : tables) {
    EXPECT_NE(t->simulate_windows, nullptr);
  }
  // The dispatched kernel is one of the available ones.
  const link::kernels::KernelTable& active = link::kernels::active_kernels();
  bool found = false;
  for (const link::kernels::KernelTable* t : tables) {
    found = found || t == &active;
  }
  EXPECT_TRUE(found);
}

}  // namespace
