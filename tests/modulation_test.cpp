// Unit tests for PPM codec, framing, and the OOK baseline.
#include <gtest/gtest.h>

#include "oci/modulation/frame.hpp"
#include "oci/modulation/ook.hpp"
#include "oci/modulation/ppm.hpp"

namespace {

using namespace oci::modulation;
using oci::util::Time;

PpmConfig cfg(unsigned k, SlotLabeling lab = SlotLabeling::kBinary) {
  PpmConfig c;
  c.bits_per_symbol = k;
  c.slot_width = Time::nanoseconds(1.0);
  c.labeling = lab;
  return c;
}

// ---------- PPM ----------

TEST(Ppm, SlotCount) {
  EXPECT_EQ(PpmCodec(cfg(1)).slot_count(), 2u);
  EXPECT_EQ(PpmCodec(cfg(4)).slot_count(), 16u);
  EXPECT_EQ(PpmCodec(cfg(10)).slot_count(), 1024u);
}

TEST(Ppm, SymbolSpan) {
  const PpmCodec codec(cfg(4));
  EXPECT_DOUBLE_EQ(codec.symbol_span().nanoseconds(), 16.0);
}

TEST(Ppm, EncodeDecodeRoundTripBinary) {
  const PpmCodec codec(cfg(5, SlotLabeling::kBinary));
  for (std::uint64_t s = 0; s < 32; ++s) {
    EXPECT_EQ(codec.decode(codec.encode(s)), s);
  }
}

TEST(Ppm, EncodeDecodeRoundTripGray) {
  const PpmCodec codec(cfg(6, SlotLabeling::kGray));
  for (std::uint64_t s = 0; s < 64; ++s) {
    EXPECT_EQ(codec.decode(codec.encode(s)), s);
  }
}

TEST(Ppm, PulsePlacedAtSlotCentre) {
  PpmConfig c = cfg(3, SlotLabeling::kBinary);
  c.pulse_offset_fraction = 0.5;
  const PpmCodec codec(c);
  EXPECT_DOUBLE_EQ(codec.encode(0).nanoseconds(), 0.5);
  EXPECT_DOUBLE_EQ(codec.encode(5).nanoseconds(), 5.5);
}

TEST(Ppm, DecodeClampsOutOfRangeToa) {
  const PpmCodec codec(cfg(3, SlotLabeling::kBinary));
  EXPECT_EQ(codec.slot_for_toa(Time::nanoseconds(-0.5)), 0u);
  EXPECT_EQ(codec.slot_for_toa(Time::nanoseconds(100.0)), 7u);
}

TEST(Ppm, GrayLabellingAdjacentSlotsOneBit) {
  const PpmCodec codec(cfg(5, SlotLabeling::kGray));
  for (std::uint64_t slot = 0; slot + 1 < codec.slot_count(); ++slot) {
    const auto a = codec.symbol_for_slot(slot);
    const auto b = codec.symbol_for_slot(slot + 1);
    EXPECT_EQ(PpmCodec::hamming(a, b), 1u) << "slot " << slot;
  }
}

TEST(Ppm, BinaryLabellingAdjacentSlotsCanFlipMany) {
  const PpmCodec codec(cfg(4, SlotLabeling::kBinary));
  // Slot 7 -> 8 flips all 4 bits in binary labelling.
  EXPECT_EQ(PpmCodec::hamming(codec.symbol_for_slot(7), codec.symbol_for_slot(8)), 4u);
}

TEST(Ppm, SymbolOutOfRangeThrows) {
  const PpmCodec codec(cfg(3));
  EXPECT_THROW((void)codec.encode(8), std::invalid_argument);
  EXPECT_THROW((void)codec.slot_for_symbol(9), std::invalid_argument);
  EXPECT_THROW((void)codec.symbol_for_slot(8), std::invalid_argument);
}

TEST(Ppm, RejectsBadConfig) {
  EXPECT_THROW(PpmCodec(cfg(0)), std::invalid_argument);
  EXPECT_THROW(PpmCodec(cfg(21)), std::invalid_argument);
  PpmConfig bad = cfg(4);
  bad.slot_width = Time::zero();
  EXPECT_THROW(PpmCodec{bad}, std::invalid_argument);
  bad = cfg(4);
  bad.pulse_offset_fraction = 1.0;
  EXPECT_THROW(PpmCodec{bad}, std::invalid_argument);
}

TEST(Ppm, Hamming) {
  EXPECT_EQ(PpmCodec::hamming(0b1010, 0b1010), 0u);
  EXPECT_EQ(PpmCodec::hamming(0b1010, 0b0101), 4u);
  EXPECT_EQ(PpmCodec::hamming(0, 0xFF), 8u);
}

TEST(Ppm, PackUnpackBytesRoundTrip) {
  for (unsigned k : {1u, 3u, 4u, 5u, 8u, 11u}) {
    const PpmCodec codec(cfg(k));
    const std::vector<std::uint8_t> bytes{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F, 0x80, 0x01};
    const auto symbols = codec.pack_bytes(bytes);
    for (auto s : symbols) EXPECT_LT(s, codec.slot_count());
    const auto back = codec.unpack_bytes(symbols, bytes.size());
    EXPECT_EQ(back, bytes) << "k = " << k;
  }
}

TEST(Ppm, PackSymbolCount) {
  const PpmCodec codec(cfg(5));
  // 3 bytes = 24 bits -> ceil(24/5) = 5 symbols.
  EXPECT_EQ(codec.pack_bytes({1, 2, 3}).size(), 5u);
}

TEST(Ppm, PackEmpty) {
  const PpmCodec codec(cfg(4));
  EXPECT_TRUE(codec.pack_bytes({}).empty());
  EXPECT_TRUE(codec.unpack_bytes({}, 0).empty());
}

// ---------- CRC / framing ----------

TEST(Crc8, KnownVectorsAndProperties) {
  EXPECT_EQ(crc8({}), 0x00);
  // CRC-8/ATM of "123456789" is 0xF4.
  EXPECT_EQ(crc8({'1', '2', '3', '4', '5', '6', '7', '8', '9'}), 0xF4);
  // Single-bit corruption must change the CRC.
  const std::vector<std::uint8_t> msg{0x10, 0x20, 0x30};
  std::vector<std::uint8_t> bad = msg;
  bad[1] ^= 0x04;
  EXPECT_NE(crc8(msg), crc8(bad));
}

TEST(Frame, SerializeParseRoundTrip) {
  const PpmCodec codec(cfg(4));
  const FrameCodec framer(codec, FrameConfig{});
  Frame f;
  f.payload = {0x01, 0x02, 0x03, 0xFF, 0x00, 0xAB};
  const auto symbols = framer.serialize(f);
  const auto parsed = framer.deserialize(symbols);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame.payload, f.payload);
  EXPECT_EQ(parsed->symbols_consumed, symbols.size());
}

TEST(Frame, EmptyPayloadRoundTrip) {
  const PpmCodec codec(cfg(5));
  const FrameCodec framer(codec, FrameConfig{});
  const auto symbols = framer.serialize(Frame{});
  const auto parsed = framer.deserialize(symbols);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->frame.payload.empty());
}

TEST(Frame, CorruptedPayloadRejectedByCrc) {
  const PpmCodec codec(cfg(4));
  const FrameCodec framer(codec, FrameConfig{});
  Frame f;
  f.payload = {0x55, 0x66, 0x77};
  auto symbols = framer.serialize(f);
  symbols[symbols.size() - 3] ^= 1;  // flip a payload symbol
  EXPECT_FALSE(framer.deserialize(symbols).has_value());
}

TEST(Frame, WrongPreambleRejected) {
  const PpmCodec codec(cfg(4));
  const FrameCodec framer(codec, FrameConfig{});
  auto symbols = framer.serialize(Frame{.payload = {0x01}});
  symbols[0] ^= 0x3;
  EXPECT_FALSE(framer.deserialize(symbols).has_value());
}

TEST(Frame, TruncatedStreamRejected) {
  const PpmCodec codec(cfg(4));
  const FrameCodec framer(codec, FrameConfig{});
  auto symbols = framer.serialize(Frame{.payload = {0x01, 0x02, 0x03, 0x04}});
  symbols.resize(symbols.size() - 2);
  EXPECT_FALSE(framer.deserialize(symbols).has_value());
}

TEST(Frame, OversizedPayloadThrows) {
  const PpmCodec codec(cfg(4));
  FrameConfig fc;
  fc.max_payload = 4;
  const FrameCodec framer(codec, fc);
  Frame f;
  f.payload.assign(5, 0xAA);
  EXPECT_THROW(framer.serialize(f), std::invalid_argument);
}

TEST(Frame, FrameSymbolsAccountsForEverything) {
  const PpmCodec codec(cfg(4));
  const FrameCodec framer(codec, FrameConfig{});
  Frame f;
  f.payload = {1, 2, 3};
  EXPECT_EQ(framer.serialize(f).size(), framer.frame_symbols(3));
  // preamble 4 + (2 len + 3 payload + 1 crc) * 8 bits / 4 bits = 4 + 12.
  EXPECT_EQ(framer.frame_symbols(3), 16u);
}

TEST(Frame, PreamblePattern) {
  const PpmCodec codec(cfg(3));
  const FrameCodec framer(codec, FrameConfig{});
  const auto p = framer.preamble();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 7u);
  EXPECT_EQ(p[2], 0u);
  EXPECT_EQ(p[3], 7u);
}

// ---------- OOK ----------

TEST(Ook, EncodePlacesPulsesForOnes) {
  OokConfig c;
  c.bit_period = Time::nanoseconds(40.0);
  c.pulse_offset_fraction = 0.25;
  const OokCodec codec(c);
  const auto pulses = codec.encode({1, 0, 1, 1});
  ASSERT_EQ(pulses.size(), 3u);
  EXPECT_DOUBLE_EQ(pulses[0].nanoseconds(), 10.0);
  EXPECT_DOUBLE_EQ(pulses[1].nanoseconds(), 90.0);
  EXPECT_DOUBLE_EQ(pulses[2].nanoseconds(), 130.0);
}

TEST(Ook, DecodeRoundTrip) {
  const OokCodec codec(OokConfig{});
  const std::vector<std::uint8_t> bits{1, 0, 1, 1, 0, 0, 1, 0};
  const auto pulses = codec.encode(bits);
  EXPECT_EQ(codec.decode(pulses, bits.size()), bits);
}

TEST(Ook, DecodeIgnoresOutOfRangeDetections) {
  const OokCodec codec(OokConfig{});
  const std::vector<Time> dets{Time::nanoseconds(-5.0), Time::nanoseconds(400.0)};
  const auto bits = codec.decode(dets, 4);
  EXPECT_EQ(bits, (std::vector<std::uint8_t>{0, 0, 0, 0}));
}

TEST(Ook, DeadTimeLimitedRate) {
  EXPECT_DOUBLE_EQ(
      OokCodec::dead_time_limited_rate(Time::nanoseconds(40.0)).megabits_per_second(), 25.0);
  EXPECT_THROW((void)OokCodec::dead_time_limited_rate(Time::zero()), std::invalid_argument);
}

TEST(Ook, BitRateIsInversePeriod) {
  OokConfig c;
  c.bit_period = Time::nanoseconds(10.0);
  EXPECT_DOUBLE_EQ(OokCodec(c).bit_rate().megabits_per_second(), 100.0);
}

TEST(Ook, RejectsBadConfig) {
  OokConfig c;
  c.bit_period = Time::zero();
  EXPECT_THROW(OokCodec{c}, std::invalid_argument);
  c = OokConfig{};
  c.pulse_offset_fraction = 1.0;
  EXPECT_THROW(OokCodec{c}, std::invalid_argument);
}

}  // namespace
