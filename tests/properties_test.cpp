// Property-based / parameterized sweeps over the framework's invariants
// (TEST_P + INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "oci/link/optical_link.hpp"
#include "oci/link/tradeoff.hpp"
#include "oci/modulation/frame.hpp"
#include "oci/modulation/ppm.hpp"
#include "oci/photonics/silicon.hpp"
#include "oci/spad/spad.hpp"
#include "oci/tdc/calibration.hpp"
#include "oci/tdc/tdc.hpp"

namespace {

using namespace oci;
using util::Frequency;
using util::Length;
using util::RngStream;
using util::Time;
using util::Wavelength;

// ---------- PPM round trip over all K and both labelings ----------

class PpmRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, modulation::SlotLabeling>> {};

TEST_P(PpmRoundTrip, EverySymbolSurvives) {
  const auto [k, labeling] = GetParam();
  modulation::PpmConfig c;
  c.bits_per_symbol = k;
  c.slot_width = Time::nanoseconds(1.0);
  c.labeling = labeling;
  const modulation::PpmCodec codec(c);
  for (std::uint64_t s = 0; s < codec.slot_count(); ++s) {
    EXPECT_EQ(codec.decode(codec.encode(s)), s) << "k=" << k;
  }
}

TEST_P(PpmRoundTrip, SlotMappingIsBijective) {
  const auto [k, labeling] = GetParam();
  modulation::PpmConfig c;
  c.bits_per_symbol = k;
  c.labeling = labeling;
  const modulation::PpmCodec codec(c);
  std::vector<bool> seen(codec.slot_count(), false);
  for (std::uint64_t s = 0; s < codec.slot_count(); ++s) {
    const auto slot = codec.slot_for_symbol(s);
    ASSERT_LT(slot, codec.slot_count());
    EXPECT_FALSE(seen[slot]) << "collision at symbol " << s;
    seen[slot] = true;
    EXPECT_EQ(codec.symbol_for_slot(slot), s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, PpmRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u),
                       ::testing::Values(modulation::SlotLabeling::kBinary,
                                         modulation::SlotLabeling::kGray)));

// ---------- frame round trip over payload sizes and K ----------

class FrameRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(FrameRoundTrip, PayloadSurvives) {
  const auto [k, payload_size] = GetParam();
  modulation::PpmConfig c;
  c.bits_per_symbol = k;
  const modulation::PpmCodec codec(c);
  const modulation::FrameCodec framer(codec, modulation::FrameConfig{});
  modulation::Frame f;
  f.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    f.payload[i] = static_cast<std::uint8_t>((i * 37 + k) & 0xFF);
  }
  const auto parsed = framer.deserialize(framer.serialize(f));
  ASSERT_TRUE(parsed.has_value()) << "k=" << k << " size=" << payload_size;
  EXPECT_EQ(parsed->frame.payload, f.payload);
}

INSTANTIATE_TEST_SUITE_P(SizesAndOrders, FrameRoundTrip,
                         ::testing::Combine(::testing::Values(2u, 4u, 5u, 8u),
                                            ::testing::Values(std::size_t{0},
                                                              std::size_t{1},
                                                              std::size_t{17},
                                                              std::size_t{256})));

// ---------- paper trade-off identities over the whole grid ----------

class TradeoffIdentity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(TradeoffIdentity, MwEqualsDcPlusRf) {
  const auto [n, cbits] = GetParam();
  const link::TdcDesign d{n, cbits, Time::picoseconds(52.0)};
  EXPECT_NEAR(link::measurement_window(d).seconds(),
              (link::detection_cycle(d) + link::fine_range(d)).seconds(), 1e-18);
}

TEST_P(TradeoffIdentity, ThroughputIsBitsOverMw) {
  const auto [n, cbits] = GetParam();
  const link::TdcDesign d{n, cbits, Time::picoseconds(52.0)};
  EXPECT_NEAR(link::throughput(d).bits_per_second(),
              link::bits_per_sample(d) / link::measurement_window(d).seconds(), 1e-3);
}

TEST_P(TradeoffIdentity, DcDoublesPerCoarseBit) {
  const auto [n, cbits] = GetParam();
  const link::TdcDesign d{n, cbits, Time::picoseconds(52.0)};
  const link::TdcDesign d1{n, cbits + 1, Time::picoseconds(52.0)};
  EXPECT_NEAR(link::detection_cycle(d1).seconds(),
              2.0 * link::detection_cycle(d).seconds(), 1e-18);
}

INSTANTIATE_TEST_SUITE_P(Grid, TradeoffIdentity,
                         ::testing::Combine(::testing::Values(std::uint64_t{8},
                                                              std::uint64_t{16},
                                                              std::uint64_t{64},
                                                              std::uint64_t{96},
                                                              std::uint64_t{256}),
                                            ::testing::Values(0u, 1u, 3u, 5u, 8u)));

// ---------- TDC invariants across process seeds ----------

class TdcInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TdcInvariants, CodesMonotoneAndBounded) {
  RngStream rng(GetParam());
  tdc::DelayLineParams p;
  p.elements = 104;
  p.nominal_delay = Time::picoseconds(52.0);
  p.mismatch_sigma = 0.12;
  tdc::DelayLine line(p, rng);
  tdc::TdcConfig cfg;
  cfg.coarse_bits = 3;
  cfg.clock_period = Time::nanoseconds(4.8);
  const tdc::Tdc tdc(std::move(line), cfg);

  const std::uint64_t max_code =
      8ull * tdc.line().elements_used(tdc.clock_period()) - 1;
  std::uint64_t prev = 0;
  for (int i = 0; i < 800; ++i) {
    const Time toa = Time::seconds(tdc.toa_window().seconds() * i / 800.0);
    const auto r = tdc.convert_ideal(toa);
    EXPECT_LE(r.code, max_code);
    EXPECT_GE(r.code, prev);
    prev = r.code;
  }
}

TEST_P(TdcInvariants, CalibrationBoundsResidual) {
  RngStream rng(GetParam() + 1000);
  tdc::DelayLineParams p;
  p.elements = 104;
  p.nominal_delay = Time::picoseconds(52.0);
  p.mismatch_sigma = 0.12;
  tdc::DelayLine line(p, rng);
  tdc::TdcConfig cfg;
  cfg.coarse_bits = 2;
  cfg.clock_period = Time::nanoseconds(4.8);
  const tdc::Tdc tdc(std::move(line), cfg);
  RngStream cal(GetParam() + 2000);
  const auto rep = tdc::code_density_test(tdc, 500000, cal);
  const tdc::CalibrationLut lut(rep);

  // The paper's requirement: calibration ensures a fixed resolution
  // bound. Residual RMS < 1 LSB for every process corner.
  RngStream probe(GetParam() + 3000);
  double sum_sq = 0.0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    const Time toa = probe.uniform_time(tdc.toa_window());
    const auto r = tdc.convert(toa, probe);
    const double err = lut.correct(r, tdc.clock_period()).seconds() - toa.seconds();
    sum_sq += err * err;
  }
  EXPECT_LT(std::sqrt(sum_sq / probes), tdc.lsb().seconds());
}

INSTANTIATE_TEST_SUITE_P(ProcessCorners, TdcInvariants,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------- SPAD dead-time invariant across photon rates ----------

class SpadDeadTime : public ::testing::TestWithParam<double> {};

TEST_P(SpadDeadTime, NoTwoDetectionsCloserThanDeadTime) {
  const double photon_rate_mhz = GetParam();
  spad::SpadParams p;
  p.pdp_peak = 0.5;
  p.dcr_at_ref = Frequency::kilohertz(50.0);
  p.afterpulse_probability = 0.05;
  p.jitter_sigma = Time::zero();  // jitter reorders timestamps, not physics
  p.dead_time = Time::nanoseconds(40.0);
  const spad::Spad det(p, Wavelength::nanometres(480.0));

  RngStream rng(static_cast<std::uint64_t>(photon_rate_mhz * 1000) + 7);
  const Time window = Time::microseconds(50.0);
  std::vector<photonics::PhotonArrival> photons;
  const auto n = rng.poisson(photon_rate_mhz * 1e6 * window.seconds());
  for (std::int64_t i = 0; i < n; ++i) {
    photons.push_back({rng.uniform_time(window), true});
  }
  std::sort(photons.begin(), photons.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });

  const auto dets = det.detect(photons, Time::zero(), window, rng);
  for (std::size_t i = 1; i < dets.size(); ++i) {
    EXPECT_GE((dets[i].true_time - dets[i - 1].true_time).nanoseconds(), 40.0 - 1e-6)
        << "rate " << photon_rate_mhz << " MHz, detection " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SpadDeadTime,
                         ::testing::Values(0.1, 1.0, 5.0, 20.0, 50.0, 200.0));

// ---------- Beer-Lambert composition across wavelengths ----------

class BeerLambert : public ::testing::TestWithParam<double> {};

TEST_P(BeerLambert, ComposesAndIsMonotone) {
  const Wavelength wl = Wavelength::nanometres(GetParam());
  const double t10 = photonics::transmittance_si(wl, Length::micrometres(10.0));
  const double t20 = photonics::transmittance_si(wl, Length::micrometres(20.0));
  const double t30 = photonics::transmittance_si(wl, Length::micrometres(30.0));
  EXPECT_NEAR(t30, t10 * t20, 1e-12);
  EXPECT_LE(t30, t20);
  EXPECT_LE(t20, t10);
  EXPECT_GT(t10, 0.0);
  EXPECT_LE(t10, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Wavelengths, BeerLambert,
                         ::testing::Values(400.0, 520.0, 650.0, 850.0, 1000.0, 1100.0));

// ---------- link SER monotone in photon budget ----------

class LinkPhotonBudget : public ::testing::TestWithParam<double> {};

TEST_P(LinkPhotonBudget, ErasureRateMatchesPoissonMiss) {
  const double transmittance = GetParam();
  link::OpticalLinkConfig cfg;
  cfg.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  cfg.bits_per_symbol = 4;
  cfg.channel_transmittance = transmittance;
  cfg.led.peak_power = util::Power::nanowatts(40.0);  // starved link
  cfg.spad.dcr_at_ref = Frequency::hertz(0.0);
  cfg.spad.afterpulse_probability = 0.0;
  cfg.calibrate = false;

  RngStream rng(601);
  const link::OpticalLink link(cfg, rng);
  RngStream tx(607);
  const auto stats = link.measure(3000, tx);
  const double mu = link.led().photons_per_pulse() * transmittance;
  const double expected_miss = std::exp(-mu * link.detector().pdp());
  const double measured =
      static_cast<double>(stats.erasures) / static_cast<double>(stats.symbols_sent);
  EXPECT_NEAR(measured, expected_miss, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Budgets, LinkPhotonBudget,
                         ::testing::Values(0.02, 0.05, 0.1, 0.3, 0.8));

}  // namespace
