// Tests for the scenario text-spec parser: the key=value format,
// sweep axis expressions (lists, linear/log ranges, categorical
// detection), error reporting with line numbers, and a parsed-spec ->
// run round trip.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "oci/scenario/parse.hpp"
#include "oci/scenario/runner.hpp"

namespace {

using namespace oci;
using scenario::parse_spec_file;
using scenario::parse_spec_text;
using scenario::ScenarioSpec;

TEST(ScenarioParse, FullSpecRoundTrip) {
  const std::string text = R"(
# a link experiment
name        = parse_demo
description = jitter scan          # trailing comment
topology    = point-to-point
seed        = 1234
bits_per_symbol = 6
calibrate   = 0
jitter_ps   = 55
samples     = 300
repro_scaled = 0
sweep.jitter_ps = 40, 80, 120
)";
  const ScenarioSpec spec = parse_spec_text(text);
  EXPECT_EQ(spec.name, "parse_demo");
  EXPECT_EQ(spec.description, "jitter scan");
  EXPECT_EQ(spec.topology, scenario::Topology::kPointToPoint);
  EXPECT_EQ(spec.seed, 1234u);
  EXPECT_EQ(spec.device.bits_per_symbol, 6u);
  EXPECT_FALSE(spec.device.calibrate);
  EXPECT_DOUBLE_EQ(spec.device.spad.jitter_sigma.picoseconds(), 55.0);
  EXPECT_EQ(spec.budget.samples, 300u);
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_EQ(spec.sweep[0].param, "jitter_ps");
  EXPECT_EQ(spec.sweep[0].values, (std::vector<double>{40.0, 80.0, 120.0}));
  EXPECT_NO_THROW(spec.validate());

  const scenario::RunReport report = scenario::ScenarioRunner().run(spec);
  EXPECT_EQ(report.points.size(), 3u);
  EXPECT_EQ(report.seed, 1234u);
}

TEST(ScenarioParse, RangeExpressions) {
  const ScenarioSpec spec = parse_spec_text(
      "sweep.offered_load = linear(0.2, 1.0, 5)\n"
      "sweep.samples = log(10, 1000, 3)\n");
  ASSERT_EQ(spec.sweep.size(), 2u);
  ASSERT_EQ(spec.sweep[0].size(), 5u);
  EXPECT_DOUBLE_EQ(spec.sweep[0].values.front(), 0.2);
  EXPECT_DOUBLE_EQ(spec.sweep[0].values.back(), 1.0);
  ASSERT_EQ(spec.sweep[1].size(), 3u);
  EXPECT_NEAR(spec.sweep[1].values[1], 100.0, 1e-9);
}

TEST(ScenarioParse, CategoricalAxisDetection) {
  const ScenarioSpec spec = parse_spec_text(
      "topology = stack-noc\n"
      "sweep.mac = tdma, token, aloha\n");
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_TRUE(spec.sweep[0].categorical());
  EXPECT_EQ(spec.sweep[0].labels,
            (std::vector<std::string>{"tdma", "token", "aloha"}));
}

TEST(ScenarioParse, CategoricalParamWithNumericLookingValues) {
  // tech_node names can be digit-led ("65nm"); the axis must stay
  // categorical because the registry says the key is categorical.
  const ScenarioSpec spec = parse_spec_text("sweep.tech_node = 65nm, 45nm\n");
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_TRUE(spec.sweep[0].categorical());
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  try {
    (void)parse_spec_text("name = ok\nthis line has no equals\n", "demo.spec");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("demo.spec:2"), std::string::npos);
  }

  // Unknown scalar keys are hard errors with a file:line prefix -- a
  // typo must never silently run the wrong experiment (run_scenario
  // turns this into a non-zero exit).
  try {
    (void)parse_spec_text("name = ok\njiter_ps = 40\n", "demo.spec");
    FAIL() << "expected parse error for unknown key";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("demo.spec:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown parameter 'jiter_ps'"), std::string::npos) << msg;
  }

  EXPECT_THROW((void)parse_spec_text("sweep.nope = 1, 2\n"), std::runtime_error);
  EXPECT_THROW((void)parse_spec_text("jitter_ps = \n"), std::runtime_error);
  EXPECT_THROW((void)parse_spec_text("sweep.jitter_ps = linear(1, 2)\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_spec_text("sweep.samples = log(0, 10, 3)\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_spec_text("topology = mesh\n"), std::runtime_error);
  EXPECT_THROW((void)parse_spec_file("/nonexistent/x.spec"), std::runtime_error);
}

TEST(ScenarioParse, PrecisionKeysParse) {
  const ScenarioSpec spec = parse_spec_text(
      "name = adaptive\n"
      "precision.metric = ser\n"
      "precision.half_width = 0.01\n"
      "precision.relative = 0.1\n"
      "precision.chunk = 500\n"
      "precision.min_samples = 500\n"
      "precision.max_samples = 32000\n"
      "precision.confidence_z = 2.576\n");
  EXPECT_TRUE(spec.precision.enabled);
  EXPECT_EQ(spec.precision.metric, "ser");
  EXPECT_DOUBLE_EQ(spec.precision.target_half_width, 0.01);
  EXPECT_DOUBLE_EQ(spec.precision.target_relative, 0.1);
  EXPECT_EQ(spec.precision.chunk, 500u);
  EXPECT_EQ(spec.precision.min_samples, 500u);
  EXPECT_EQ(spec.precision.max_samples, 32000u);
  EXPECT_DOUBLE_EQ(spec.precision.confidence_z, 2.576);

  const ScenarioSpec off =
      parse_spec_text("precision.half_width = 0.01\nprecision.enabled = 0\n");
  EXPECT_FALSE(off.precision.enabled);
}

TEST(ScenarioParse, FaultKeysParse) {
  const ScenarioSpec spec = parse_spec_text(
      "name = degraded\n"
      "calibrate = 0\n"
      "fault.dead_pixel_fraction = 0.25\n"
      "fault.hot_pixel_fraction = 0.1\n"
      "fault.hot_pixel_dcr_hz = 2e6\n"
      "fault.array_pixels = 128\n"
      "fault.mask_hot_pixels = 0\n"
      "fault.tdc_drift_c = 12.5\n"
      "fault.recalibrate = 0\n"
      "fault.salt = 7\n"
      "sweep.fault.dead_pixel_fraction = linear(0, 0.5, 6)\n");
  EXPECT_DOUBLE_EQ(spec.fault.dead_pixel_fraction, 0.25);
  EXPECT_DOUBLE_EQ(spec.fault.hot_pixel_fraction, 0.1);
  EXPECT_DOUBLE_EQ(spec.fault.hot_pixel_dcr_hz, 2e6);
  EXPECT_EQ(spec.fault.array_pixels, 128u);
  EXPECT_FALSE(spec.fault.mask_hot_pixels);
  EXPECT_DOUBLE_EQ(spec.fault.tdc_drift_c, 12.5);
  EXPECT_FALSE(spec.fault.recalibrate);
  EXPECT_EQ(spec.fault.salt, 7u);
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_EQ(spec.sweep[0].param, "fault.dead_pixel_fraction");
  ASSERT_EQ(spec.sweep[0].size(), 6u);
  EXPECT_NO_THROW(spec.validate());

  // A typo'd fault key is a hard error with a file:line prefix, same as
  // every other unknown key.
  try {
    (void)parse_spec_text("name = ok\nfault.bogus = 1\n", "demo.spec");
    FAIL() << "expected parse error for unknown fault key";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("demo.spec:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown parameter 'fault.bogus'"), std::string::npos) << msg;
  }
  // Malformed values and out-of-range parameters also fail loudly.
  EXPECT_THROW((void)parse_spec_text("fault.tdc_drift_c = warm\n"), std::runtime_error);
  const ScenarioSpec bad = parse_spec_text("fault.dead_pixel_fraction = 1.5\n");
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ScenarioParse, VarianceKeysParse) {
  const ScenarioSpec spec = parse_spec_text(
      "name = rare\n"
      "calibrate = 0\n"
      "variance.kind = tilt\n"
      "variance.jitter_tilt = 2.5\n"
      "variance.noise_tilt = 3\n"
      "sweep.jitter_ps = 60, 120\n"
      "sweep.variance.kind = none, tilt\n");
  EXPECT_EQ(spec.variance.kind, rare::Kind::kTilt);
  EXPECT_DOUBLE_EQ(spec.variance.jitter_tilt, 2.5);
  EXPECT_DOUBLE_EQ(spec.variance.noise_tilt, 3.0);
  ASSERT_EQ(spec.sweep.size(), 2u);
  EXPECT_EQ(spec.sweep[1].param, "variance.kind");
  EXPECT_NO_THROW(spec.validate());

  const ScenarioSpec split = parse_spec_text(
      "variance.kind = split\n"
      "variance.levels = 3:2:1:0.5\n"
      "variance.split_levels = 4\n");
  EXPECT_EQ(split.variance.kind, rare::Kind::kSplit);
  EXPECT_EQ(split.variance.levels, "3:2:1:0.5");
  EXPECT_EQ(split.variance.split_levels, 4u);
  EXPECT_NO_THROW(split.validate());

  // Unknown variance keys die with file:line, like every other family.
  try {
    (void)parse_spec_text("name = ok\nvariance.bogus = 1\n", "demo.spec");
    FAIL() << "expected parse error for unknown variance key";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("demo.spec:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown parameter 'variance.bogus'"), std::string::npos)
        << msg;
  }
  // A typo'd level schedule fails at set time, carrying the file:line.
  try {
    (void)parse_spec_text("variance.levels = 3;2;1\n", "demo.spec");
    FAIL() << "expected parse error for malformed level schedule";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("demo.spec:1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)parse_spec_text("variance.kind = quantum\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_spec_text("variance.levels = 1:2:3\n"),
               std::runtime_error);  // must strictly decrease
}

TEST(ScenarioParse, VarianceValidationRejectsBadCombinations) {
  const auto invalid = [](const std::string& text) {
    const ScenarioSpec spec = parse_spec_text(text);
    EXPECT_THROW(spec.validate(), std::invalid_argument) << text;
  };
  // Tilt factors must be positive; a tilt that is crude MC in disguise
  // and a tilt carrying a splitting schedule are both config bugs.
  invalid("variance.kind = tilt\nvariance.jitter_tilt = 0\n");
  invalid("variance.kind = tilt\nvariance.jitter_tilt = -2\n");
  invalid("variance.kind = tilt\n");  // both factors at 1
  invalid(
      "variance.kind = tilt\nvariance.jitter_tilt = 2\n"
      "variance.levels = 3:2:1\n");
  // Split rejects tilt factors and needs a schedule from somewhere.
  invalid("variance.kind = split\nvariance.jitter_tilt = 2\n");
  invalid("variance.kind = split\nvariance.split_levels = 0\n");
  // The engines drive the scalar point-to-point symbol path only.
  invalid(
      "topology = stack-noc\nvariance.kind = tilt\n"
      "variance.jitter_tilt = 2\n");
  invalid(
      "mode = code-density\nvariance.kind = tilt\n"
      "variance.jitter_tilt = 2\n");
  {
    ScenarioSpec spec =
        parse_spec_text("variance.kind = tilt\nvariance.jitter_tilt = 2\n");
    spec.aggressors.push_back({1.5, 40.0});
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  invalid(
      "variance.kind = tilt\nvariance.jitter_tilt = 2\n"
      "fault.dark_window_probability = 0.1\n");
  // Weighted acceleration targets rate metrics; deterministic means
  // make no sense as adaptive precision targets under weighting.
  invalid(
      "variance.kind = tilt\nvariance.jitter_tilt = 2\n"
      "precision.metric = throughput_bps\nprecision.half_width = 1\n");
  // And the well-formed neighbours of each rejection stay valid.
  const ScenarioSpec ok = parse_spec_text(
      "variance.kind = tilt\nvariance.jitter_tilt = 2\n"
      "precision.metric = ser\nprecision.half_width = 0.001\n");
  EXPECT_NO_THROW(ok.validate());
}

TEST(ScenarioParse, CheckedInSpecFilesParseAndValidate) {
  // The CI job runs these through tools/run_scenario; parsing must not
  // rot. The test binary runs from build/tests, so walk up to the repo
  // root where ctest executes (WORKING_DIRECTORY is the binary dir) --
  // use the source-relative path baked in by CMake instead.
#ifdef OCI_SOURCE_DIR
  const std::string root = OCI_SOURCE_DIR;
  for (const std::string name :
       {"link_jitter", "noc_saturation", "degraded_link", "noc_node_failure",
        "deep_ser"}) {
    const ScenarioSpec spec = parse_spec_file(root + "/scenarios/" + name + ".spec");
    EXPECT_EQ(spec.name, name);
    EXPECT_NO_THROW(spec.validate());
    EXPECT_GE(spec.sweep.size(), 1u);
  }
#else
  GTEST_SKIP() << "OCI_SOURCE_DIR not defined";
#endif
}

}  // namespace
