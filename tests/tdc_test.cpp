// Unit tests for the two-step TDC: delay line, thermometer decoding,
// conversion, and code-density calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "oci/tdc/calibration.hpp"
#include "oci/tdc/delay_line.hpp"
#include "oci/tdc/tdc.hpp"
#include "oci/tdc/thermometer.hpp"

namespace {

using namespace oci::tdc;
using oci::util::RngStream;
using oci::util::Temperature;
using oci::util::Time;
using oci::util::Voltage;

DelayLineParams ideal_line_params(std::size_t n = 96) {
  DelayLineParams p;
  p.elements = n;
  p.nominal_delay = Time::picoseconds(52.0);
  p.mismatch_sigma = 0.0;
  p.metastability_window = Time::zero();
  return p;
}

DelayLineParams paper_line_params() {
  DelayLineParams p;
  p.elements = 96;
  p.nominal_delay = Time::picoseconds(52.0);
  p.mismatch_sigma = 0.12;
  p.metastability_window = Time::picoseconds(4.0);
  return p;
}

// ---------- delay line ----------

TEST(DelayLine, IdealBoundariesUniform) {
  RngStream rng(71);
  const DelayLine line(ideal_line_params(), rng);
  EXPECT_EQ(line.size(), 96u);
  EXPECT_NEAR(line.total_delay().nanoseconds(), 96 * 0.052, 1e-12);
  EXPECT_NEAR(line.boundary(10).picoseconds(), 520.0, 1e-9);
  EXPECT_NEAR(line.element_delay(50).picoseconds(), 52.0, 1e-9);
}

TEST(DelayLine, IdealCodeCountsBoundaries) {
  RngStream rng(73);
  const DelayLine line(ideal_line_params(), rng);
  EXPECT_EQ(line.ideal_code(Time::zero()), 0u);
  EXPECT_EQ(line.ideal_code(Time::picoseconds(51.9)), 0u);
  EXPECT_EQ(line.ideal_code(Time::picoseconds(52.1)), 1u);
  EXPECT_EQ(line.ideal_code(Time::picoseconds(52.0 * 10 + 1.0)), 10u);
  // Beyond the chain saturates at N.
  EXPECT_EQ(line.ideal_code(Time::nanoseconds(100.0)), 96u);
  EXPECT_EQ(line.ideal_code(Time::picoseconds(-5.0)), 0u);
}

TEST(DelayLine, MismatchIsStaticAndSeedDependent) {
  RngStream rng_a(79), rng_a2(79), rng_b(83);
  const DelayLine a(paper_line_params(), rng_a);
  const DelayLine a2(paper_line_params(), rng_a2);
  const DelayLine b(paper_line_params(), rng_b);
  EXPECT_DOUBLE_EQ(a.element_delay(5).seconds(), a2.element_delay(5).seconds());
  EXPECT_NE(a.element_delay(5).seconds(), b.element_delay(5).seconds());
}

TEST(DelayLine, TemperatureSlowsElements) {
  RngStream rng(89);
  DelayLine line(ideal_line_params(), rng);
  const double cold = line.total_delay().seconds();
  line.set_conditions(Temperature::celsius(80.0), Voltage::volts(1.5));
  const double hot = line.total_delay().seconds();
  EXPECT_NEAR(hot / cold, 1.0 + 2.0e-3 * 60.0, 1e-9);
}

TEST(DelayLine, SupplyDroopSlowsElements) {
  RngStream rng(97);
  DelayLine line(ideal_line_params(), rng);
  const double nominal = line.total_delay().seconds();
  line.set_conditions(Temperature::celsius(20.0), Voltage::volts(1.3));
  EXPECT_NEAR(line.total_delay().seconds() / nominal, 1.0 + 0.25 * 0.2, 1e-9);
}

TEST(DelayLine, ElementsUsedMatchesPaperScenario) {
  // The paper: 96-element chain, 200 MHz clock (5 ns), 93 used at 20 C.
  // With ideal 52 ps elements, 5 ns needs ceil(5/0.052) = 97 > 96, so the
  // paper's realised element delay is slightly larger; our reproduction
  // uses delta such that ~93 elements cover 5 ns: 5 ns / 93 ~ 53.8 ps.
  DelayLineParams p = ideal_line_params();
  p.nominal_delay = Time::picoseconds(53.8);
  RngStream rng(101);
  const DelayLine line(p, rng);
  EXPECT_EQ(line.elements_used(Time::nanoseconds(5.0)), 93u);
  EXPECT_TRUE(line.covers(Time::nanoseconds(5.0)));
}

TEST(DelayLine, CoverageFailsWhenChainTooShort) {
  DelayLineParams p = ideal_line_params(8);
  RngStream rng(103);
  const DelayLine line(p, rng);
  EXPECT_FALSE(line.covers(Time::nanoseconds(5.0)));
  EXPECT_EQ(line.elements_used(Time::nanoseconds(5.0)), 8u);
}

TEST(DelayLine, SampleCleanWithoutMetastability) {
  RngStream rng(107);
  const DelayLine line(ideal_line_params(), rng);
  RngStream sample_rng(109);
  const auto code = line.sample(Time::picoseconds(52.0 * 20 + 26.0), sample_rng);
  EXPECT_TRUE(is_clean(code));
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kOnesCount), 20u);
}

TEST(DelayLine, MetastabilityCreatesBubblesNearBoundary) {
  DelayLineParams p = ideal_line_params();
  p.metastability_window = Time::picoseconds(8.0);
  RngStream rng(113);
  const DelayLine line(p, rng);
  RngStream sample_rng(127);
  // Interval exactly on a boundary: the racing tap resolves randomly.
  int flips = 0;
  for (int i = 0; i < 200; ++i) {
    const auto code = line.sample(Time::picoseconds(52.0 * 20), sample_rng);
    const auto k = decode_thermometer(code, ThermometerDecode::kOnesCount);
    if (k != 20u) ++flips;
  }
  EXPECT_GT(flips, 40);   // ~50% of samples flip the racing tap
  EXPECT_LT(flips, 160);
}

TEST(DelayLine, RejectsBadParams) {
  RngStream rng(131);
  DelayLineParams p = ideal_line_params();
  p.elements = 0;
  EXPECT_THROW(DelayLine(p, rng), std::invalid_argument);
  p = ideal_line_params();
  p.nominal_delay = Time::zero();
  EXPECT_THROW(DelayLine(p, rng), std::invalid_argument);
  p = ideal_line_params();
  p.mismatch_sigma = 1.0;
  EXPECT_THROW(DelayLine(p, rng), std::invalid_argument);
}

// ---------- thermometer decoding ----------

ThermometerCode make_code(std::initializer_list<int> bits) {
  ThermometerCode c;
  for (int b : bits) c.push_back(static_cast<std::uint8_t>(b));
  return c;
}

TEST(Thermometer, CleanCodeAllMethodsAgree) {
  const auto code = make_code({1, 1, 1, 1, 0, 0, 0, 0});
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kOnesCount), 4u);
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kLeadingOnes), 4u);
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kMajorityWindow), 4u);
  EXPECT_TRUE(is_clean(code));
  EXPECT_EQ(count_bubbles(code), 0u);
}

TEST(Thermometer, BubbleBelowTransition) {
  // One zero bubble inside the ones run.
  const auto code = make_code({1, 1, 0, 1, 1, 0, 0, 0});
  EXPECT_FALSE(is_clean(code));
  EXPECT_EQ(count_bubbles(code), 2u);  // the 0 at idx2 and the 1 at idx4
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kOnesCount), 4u);
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kLeadingOnes), 2u);  // truncates
  // The majority filter heals the bubble into 11111000 -> 5: it treats
  // the bubble as a late transition rather than dropping a tap.
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kMajorityWindow), 5u);
}

TEST(Thermometer, IsolatedHighTap) {
  const auto code = make_code({1, 1, 0, 0, 0, 1, 0, 0});
  // Majority filter suppresses the stray 1.
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kMajorityWindow), 2u);
  EXPECT_EQ(decode_thermometer(code, ThermometerDecode::kOnesCount), 3u);
}

TEST(Thermometer, EdgeCases) {
  EXPECT_EQ(decode_thermometer(make_code({}), ThermometerDecode::kOnesCount), 0u);
  EXPECT_EQ(decode_thermometer(make_code({1, 1}), ThermometerDecode::kMajorityWindow), 2u);
  EXPECT_EQ(decode_thermometer(make_code({0, 0, 0}), ThermometerDecode::kLeadingOnes), 0u);
  EXPECT_EQ(decode_thermometer(make_code({1, 1, 1}), ThermometerDecode::kLeadingOnes), 3u);
}

// ---------- TDC conversion ----------

Tdc make_ideal_tdc(unsigned coarse_bits = 3) {
  RngStream rng(137);
  DelayLine line(ideal_line_params(), rng);
  TdcConfig cfg;
  cfg.coarse_bits = coarse_bits;
  cfg.decode = ThermometerDecode::kOnesCount;
  return Tdc(std::move(line), cfg);
}

TEST(Tdc, WindowsMatchPaperFormulas) {
  const Tdc tdc = make_ideal_tdc(3);
  const double rf = 96 * 52e-12;
  EXPECT_NEAR(tdc.clock_period().seconds(), rf, 1e-15);
  EXPECT_NEAR(tdc.toa_window().seconds(), 8 * rf, 1e-15);
  EXPECT_NEAR(tdc.measurement_window().seconds(), 9 * rf, 1e-15);  // (2^C + 1) Rf
  EXPECT_EQ(tdc.bits_per_sample(), 6u + 3u);                       // log2(96)=6 floor
}

TEST(Tdc, IdealConversionRecoversToa) {
  const Tdc tdc = make_ideal_tdc(3);
  for (double ns : {0.1, 0.77, 1.93, 2.5, 3.33, 4.999, 12.3, 20.0, 30.0}) {
    const Time toa = Time::nanoseconds(ns);
    if (toa >= tdc.toa_window()) continue;
    const TdcReading r = tdc.convert_ideal(toa);
    EXPECT_FALSE(r.saturated);
    EXPECT_NEAR(r.estimate.seconds(), toa.seconds(), tdc.lsb().seconds())
        << "toa = " << ns << " ns";
  }
}

TEST(Tdc, CodeMonotoneInToa) {
  const Tdc tdc = make_ideal_tdc(3);
  std::uint64_t prev = 0;
  const double window_s = tdc.toa_window().seconds();
  for (int i = 0; i < 2000; ++i) {
    const Time toa = Time::seconds(window_s * i / 2000.0);
    const std::uint64_t code = tdc.convert_ideal(toa).code;
    EXPECT_GE(code, prev) << "at sample " << i;
    prev = code;
  }
}

TEST(Tdc, SaturationOutsideWindow) {
  const Tdc tdc = make_ideal_tdc(2);
  EXPECT_TRUE(tdc.convert_ideal(Time::nanoseconds(-1.0)).saturated);
  EXPECT_TRUE(tdc.convert_ideal(tdc.toa_window()).saturated);
  EXPECT_FALSE(tdc.convert_ideal(Time::zero()).saturated);
}

TEST(Tdc, ZeroToaGivesZeroCode) {
  const Tdc tdc = make_ideal_tdc(3);
  const TdcReading r = tdc.convert_ideal(Time::zero());
  EXPECT_EQ(r.code, 0u);
  EXPECT_EQ(r.coarse, 0u);
  EXPECT_EQ(r.fine, 0u);
}

TEST(Tdc, StochasticMatchesIdealAwayFromBoundaries) {
  RngStream rng(139);
  DelayLine line(paper_line_params(), rng);
  TdcConfig cfg;
  cfg.coarse_bits = 3;
  // The mismatched chain may fall short of the nominal 5 ns fine range;
  // clock it at 4.5 ns to guarantee coverage.
  cfg.clock_period = Time::nanoseconds(4.5);
  const Tdc tdc(std::move(line), cfg);
  RngStream conv_rng(149);
  int mismatches = 0;
  for (int i = 0; i < 500; ++i) {
    const Time toa = Time::seconds(tdc.toa_window().seconds() * (i + 0.5) / 500.0);
    const auto ideal = tdc.convert_ideal(toa);
    const auto noisy = tdc.convert(toa, conv_rng);
    if (std::llabs(static_cast<long long>(ideal.code) -
                   static_cast<long long>(noisy.code)) > 1) {
      ++mismatches;
    }
  }
  EXPECT_LT(mismatches, 10);  // metastability shifts at most 1 code, rarely
}

TEST(Tdc, ThrowsIfLineCannotCoverClock) {
  RngStream rng(151);
  DelayLine line(ideal_line_params(8), rng);  // 8 x 52 ps = 416 ps chain
  TdcConfig cfg;
  cfg.clock_period = Time::nanoseconds(5.0);
  EXPECT_THROW(Tdc(std::move(line), cfg), std::invalid_argument);
}

// ---------- calibration ----------

TEST(Calibration, NonlinearityFromKnownWidths) {
  // Bins: 1, 1, 2 (in arbitrary seconds); LSB = 4/3.
  const auto rep = nonlinearity_from_widths({1.0, 1.0, 2.0});
  ASSERT_EQ(rep.codes, 3u);
  EXPECT_NEAR(rep.lsb_s, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.dnl_lsb[0], 1.0 / (4.0 / 3.0) - 1.0, 1e-12);
  EXPECT_NEAR(rep.dnl_lsb[2], 2.0 / (4.0 / 3.0) - 1.0, 1e-12);
  // INL at left boundary of code 0 is 0.
  EXPECT_DOUBLE_EQ(rep.inl_lsb[0], 0.0);
  EXPECT_GT(rep.max_abs_dnl, 0.0);
}

TEST(Calibration, DnlSumsToZeroOverInteriorBins) {
  // The LSB is estimated from the interior bins (the first/last bins of
  // a code-density test are edge-truncated), so the zero-sum identity
  // holds over the interior.
  const auto rep = nonlinearity_from_widths({0.8, 1.1, 1.3, 0.9, 0.9});
  double sum = 0.0;
  for (std::size_t k = 1; k + 1 < rep.codes; ++k) sum += rep.dnl_lsb[k];
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Calibration, IdealLineHasTinyDnl) {
  const Tdc tdc = make_ideal_tdc(2);
  RngStream rng(157);
  const auto rep = code_density_test(tdc, 2000000, rng, /*with_metastability=*/false);
  // Pure estimator noise on an ideal line: per-bin sigma ~ sqrt(N/M) and
  // the INL random walk stays well under a tenth of an LSB at 2M hits.
  EXPECT_LT(rep.max_abs_dnl, 0.04);
  EXPECT_LT(rep.max_abs_inl, 0.1);
}

TEST(Calibration, MismatchedLineShowsRealDnl) {
  RngStream rng(163);
  DelayLine line(paper_line_params(), rng);
  TdcConfig cfg;
  cfg.coarse_bits = 2;
  cfg.clock_period = Time::nanoseconds(4.5);
  const Tdc tdc(std::move(line), cfg);
  RngStream cal_rng(167);
  const auto rep = code_density_test(tdc, 500000, cal_rng);
  EXPECT_GT(rep.max_abs_dnl, 0.05);  // 12% mismatch must show up
  EXPECT_LT(rep.max_abs_dnl, 1.0);   // but bounded (paper: DNL within ~1 LSB)
  EXPECT_EQ(rep.samples, 500000u);
}

TEST(Calibration, EstimatedWidthsMatchGroundTruth) {
  RngStream rng(173);
  DelayLineParams p = paper_line_params();
  p.metastability_window = Time::zero();
  DelayLine line(p, rng);
  TdcConfig cfg;
  cfg.coarse_bits = 1;
  cfg.clock_period = Time::nanoseconds(4.5);
  Tdc tdc(std::move(line), cfg);
  RngStream cal_rng(179);
  const auto rep = code_density_test(tdc, 2000000, cal_rng, false);
  // Compare estimated bin widths against the line's true element delays.
  const auto& dl = tdc.line();
  for (std::size_t k = 1; k + 1 < rep.codes; ++k) {
    EXPECT_NEAR(rep.bin_width_s[k], dl.element_delay(k).seconds(),
                dl.element_delay(k).seconds() * 0.15)
        << "bin " << k;
  }
}

TEST(Calibration, LutCorrectionReducesError) {
  RngStream rng(181);
  DelayLine line(paper_line_params(), rng);
  TdcConfig cfg;
  cfg.coarse_bits = 2;
  cfg.clock_period = Time::nanoseconds(4.5);
  const Tdc tdc(std::move(line), cfg);
  RngStream cal_rng(191);
  const auto rep = code_density_test(tdc, 1000000, cal_rng);
  const CalibrationLut lut(rep);
  ASSERT_TRUE(lut.valid());

  RngStream probe_rng(193);
  double err_raw = 0.0, err_cal = 0.0;
  const int probes = 4000;
  for (int i = 0; i < probes; ++i) {
    const Time toa = probe_rng.uniform_time(tdc.toa_window());
    const auto reading = tdc.convert(toa, probe_rng);
    const double raw = reading.estimate.seconds() - toa.seconds();
    const double cal = lut.correct(reading, tdc.clock_period()).seconds() - toa.seconds();
    err_raw += raw * raw;
    err_cal += cal * cal;
  }
  EXPECT_LT(std::sqrt(err_cal / probes), std::sqrt(err_raw / probes));
  // Calibrated RMS error should be near the quantisation floor (LSB/sqrt(12)).
  const double lsb = tdc.lsb().seconds();
  EXPECT_LT(std::sqrt(err_cal / probes), 2.0 * lsb);
}

TEST(Calibration, LutRejectsUse_WhenEmpty) {
  const CalibrationLut lut;
  EXPECT_FALSE(lut.valid());
  EXPECT_THROW((void)lut.fine_interval(0), std::logic_error);
}

TEST(Calibration, ZeroSamplesThrows) {
  const Tdc tdc = make_ideal_tdc(1);
  RngStream rng(197);
  EXPECT_THROW(code_density_test(tdc, 0, rng), std::invalid_argument);
}

// ---------- fused sample-and-decode fast path ----------

// The conversion hot path (sample_and_decode) must be draw-for-draw and
// result-for-result identical to materialising the thermometer code and
// decoding it, across every decode method, metastability width (zero,
// paper-scale, absurdly wide), chain length, and interval -- including
// intervals pinned exactly onto tap boundaries and the window edges.
TEST(Thermometer, SampleAndDecodeMatchesMaterialisedPath) {
  const ThermometerDecode methods[] = {ThermometerDecode::kOnesCount,
                                       ThermometerDecode::kLeadingOnes,
                                       ThermometerDecode::kMajorityWindow};
  const double meta_ps[] = {0.0, 4.0, 60.0, 5000.0};
  const std::size_t sizes[] = {1, 2, 3, 17, 96};

  for (const std::size_t n : sizes) {
    for (const double meta : meta_ps) {
      DelayLineParams p;
      p.elements = n;
      p.nominal_delay = Time::picoseconds(52.0);
      p.mismatch_sigma = 0.12;
      p.odd_even_skew = 0.2;
      p.metastability_window = Time::picoseconds(meta);
      RngStream process(1000 + n);
      const DelayLine line(p, process);

      RngStream pick(2000 + n + static_cast<std::uint64_t>(meta));
      for (const ThermometerDecode method : methods) {
        for (int trial = 0; trial < 60; ++trial) {
          Time interval;
          switch (trial % 4) {
            case 0:  // uniform over the chain
              interval = pick.uniform_time(line.total_delay() * 1.1);
              break;
            case 1:  // exactly on a tap boundary
              interval = line.boundary(static_cast<std::size_t>(
                  pick.uniform_int(0, static_cast<std::int64_t>(n))));
              break;
            case 2:  // exactly meta below a boundary
              interval = line.boundary(static_cast<std::size_t>(pick.uniform_int(
                             0, static_cast<std::int64_t>(n)))) -
                         p.metastability_window;
              break;
            default:  // before the chain / negative margins everywhere
              interval = Time::seconds(-1e-12);
              break;
          }
          RngStream fused(static_cast<std::uint64_t>(trial) * 7919 + 13);
          RngStream naive(static_cast<std::uint64_t>(trial) * 7919 + 13);
          const std::size_t fast = sample_and_decode(line, interval, fused, method);
          const std::size_t slow = decode_thermometer(line.sample(interval, naive), method);
          ASSERT_EQ(fast, slow) << "n=" << n << " meta=" << meta
                                << " method=" << static_cast<int>(method)
                                << " interval=" << interval.seconds();
          // Identical RNG consumption: the next raw draw must agree.
          ASSERT_EQ(fused.engine()(), naive.engine()());
        }
      }
    }
  }
}

TEST(Thermometer, SampleIntoReusesBuffer) {
  DelayLineParams p = paper_line_params();
  RngStream process(31);
  const DelayLine line(p, process);
  ThermometerCode buffer;
  for (int i = 0; i < 5; ++i) {
    RngStream a(100 + i), b(100 + i);
    const Time interval = Time::picoseconds(52.0 * i * 7);
    line.sample_into(interval, a, buffer);
    EXPECT_EQ(buffer, line.sample(interval, b));
  }
}

}  // namespace
