// Tests for GF(2^8) arithmetic, the Reed-Solomon errors-and-erasures
// codec, and the RS-protected optical link layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "oci/link/rs_link.hpp"
#include "oci/modulation/gf256.hpp"
#include "oci/modulation/reed_solomon.hpp"
#include "oci/util/random.hpp"

namespace gf = oci::modulation::gf256;
using oci::modulation::ReedSolomon;
using oci::util::RngStream;

// ---------- GF(256) ----------

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf::add(0xFF, 0xFF), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::mul(x, 1), x);
    EXPECT_EQ(gf::mul(1, x), x);
    EXPECT_EQ(gf::mul(x, 0), 0);
    EXPECT_EQ(gf::mul(0, x), 0);
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::mul(x, gf::inv(x)), 1) << "a = " << a;
  }
}

TEST(Gf256, MultiplicationCommutesAndAssociates) {
  RngStream rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf::mul(a, b), gf::mul(b, a));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, MultiplicationDistributesOverAddition) {
  RngStream rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)), gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256, AlphaGeneratesTheFullGroup) {
  std::set<std::uint8_t> seen;
  for (unsigned i = 0; i < 255; ++i) seen.insert(gf::alpha_pow(i));
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(seen.count(0), 0u);
  EXPECT_EQ(gf::alpha_pow(255), gf::alpha_pow(0));  // order 255
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int a : {2, 3, 29, 255}) {
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 40; ++n) {
      EXPECT_EQ(gf::pow(static_cast<std::uint8_t>(a), n), acc);
      acc = gf::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, PolyEvalHorner) {
  // p(x) = 3 + 2x + x^2 at x = alpha: evaluate manually.
  const std::vector<std::uint8_t> p{3, 2, 1};
  const std::uint8_t x = gf::alpha_pow(1);
  const std::uint8_t expected =
      gf::add(gf::add(3, gf::mul(2, x)), gf::mul(x, x));
  EXPECT_EQ(gf::poly_eval(p, x), expected);
}

TEST(Gf256, PolyMulDegreesAndIdentity) {
  const std::vector<std::uint8_t> p{5, 7, 11};
  const std::vector<std::uint8_t> one{1};
  EXPECT_EQ(gf::poly_mul(p, one), p);
  const auto sq = gf::poly_mul(p, p);
  EXPECT_EQ(sq.size(), 5u);
}

TEST(Gf256, PolyMulEvaluationHomomorphism) {
  RngStream rng(17);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> a(4), b(3);
    for (auto& c : a) c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto& c : b) c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto prod = gf::poly_mul(a, b);
    const auto x = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf::poly_eval(prod, x), gf::mul(gf::poly_eval(a, x), gf::poly_eval(b, x)));
  }
}

TEST(Gf256, DerivativeKeepsOddTerms) {
  // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2.
  const std::vector<std::uint8_t> p{9, 8, 7, 6};
  const auto d = gf::poly_derivative(p);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 8);
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[2], 6);
}

// ---------- Reed-Solomon ----------

std::vector<std::uint8_t> random_bytes(std::size_t n, RngStream& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return v;
}

TEST(ReedSolomonCode, RejectsBadGeometry) {
  EXPECT_THROW(ReedSolomon(0, 8), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(16, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(16, 7), std::invalid_argument);  // odd parity count
  EXPECT_THROW(ReedSolomon(250, 8), std::invalid_argument); // n > 255
  EXPECT_NO_THROW(ReedSolomon(223, 32));                    // the classic code
}

TEST(ReedSolomonCode, EncodeIsSystematic) {
  ReedSolomon rs(16, 8);
  RngStream rng(19);
  const auto data = random_bytes(16, rng);
  const auto code = rs.encode(data);
  ASSERT_EQ(code.size(), 24u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
}

TEST(ReedSolomonCode, CleanRoundTrip) {
  ReedSolomon rs(32, 8);
  RngStream rng(23);
  const auto data = random_bytes(32, rng);
  const auto code = rs.encode(data);
  const auto result = rs.decode(code);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->data, data);
  EXPECT_EQ(result->corrected_errors, 0u);
  EXPECT_EQ(result->corrected_erasures, 0u);
}

TEST(ReedSolomonCode, CorrectsSingleErrorAtEveryPosition) {
  ReedSolomon rs(10, 4);
  RngStream rng(29);
  const auto data = random_bytes(10, rng);
  const auto code = rs.encode(data);
  for (std::size_t pos = 0; pos < code.size(); ++pos) {
    auto corrupted = code;
    corrupted[pos] ^= 0x5A;
    const auto result = rs.decode(corrupted);
    ASSERT_TRUE(result.has_value()) << "pos " << pos;
    EXPECT_EQ(result->data, data) << "pos " << pos;
    EXPECT_EQ(result->corrected_errors, 1u) << "pos " << pos;
  }
}

TEST(ReedSolomonCode, CorrectsUpToTErrors) {
  ReedSolomon rs(40, 16);  // t = 8
  RngStream rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto data = random_bytes(40, rng);
    auto code = rs.encode(data);
    std::vector<std::size_t> positions(code.size());
    std::iota(positions.begin(), positions.end(), 0u);
    std::shuffle(positions.begin(), positions.end(), rng.engine());
    const auto n_err = static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (std::size_t e = 0; e < n_err; ++e) {
      std::uint8_t flip = 0;
      while (flip == 0) flip = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      code[positions[e]] ^= flip;
    }
    const auto result = rs.decode(code);
    ASSERT_TRUE(result.has_value()) << "trial " << trial << " n_err " << n_err;
    EXPECT_EQ(result->data, data);
    EXPECT_EQ(result->corrected_errors, n_err);
  }
}

TEST(ReedSolomonCode, BeyondCapabilityNeverDeliversWrongDataSilentlyAsOriginal) {
  // With > t errors the decoder must either fail or settle on a
  // DIFFERENT codeword; it can never reproduce the original (that
  // would contradict the error count).
  ReedSolomon rs(20, 6);  // t = 3
  RngStream rng(37);
  int failures = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto data = random_bytes(20, rng);
    auto code = rs.encode(data);
    std::vector<std::size_t> positions(code.size());
    std::iota(positions.begin(), positions.end(), 0u);
    std::shuffle(positions.begin(), positions.end(), rng.engine());
    for (std::size_t e = 0; e < 5; ++e) {  // t + 2 errors
      std::uint8_t flip = 0;
      while (flip == 0) flip = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      code[positions[e]] ^= flip;
    }
    const auto result = rs.decode(code);
    if (!result) {
      ++failures;
    } else {
      EXPECT_NE(result->data, data);
    }
  }
  // The vast majority of 5-error patterns on a distance-7 code are
  // detected rather than miscorrected.
  EXPECT_GT(failures, 80);
}

TEST(ReedSolomonCode, CorrectsParityManyErasures) {
  // Erasures cost half: parity=8 corrects up to 8 known-position losses.
  ReedSolomon rs(24, 8);
  RngStream rng(41);
  const auto data = random_bytes(24, rng);
  const auto code = rs.encode(data);
  auto corrupted = code;
  const std::vector<std::size_t> erasures{0, 5, 11, 17, 23, 26, 29, 31};
  for (const auto e : erasures) corrupted[e] = 0xEE;
  const auto result = rs.decode(corrupted, erasures);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->data, data);
  EXPECT_EQ(result->corrected_erasures, erasures.size());
  // Note: positions whose "corruption" left the byte unchanged still
  // count as erasures supplied, but only actual flips are reported.
}

TEST(ReedSolomonCode, ErrorsAndErasuresMixedAtTheBound) {
  // 2*errors + erasures <= parity: with parity 8, 2 errors + 4
  // erasures saturates the bound and must still decode.
  ReedSolomon rs(30, 8);
  RngStream rng(43);
  const auto data = random_bytes(30, rng);
  const auto code = rs.encode(data);
  auto corrupted = code;
  const std::vector<std::size_t> erasures{2, 9, 20, 33};
  for (const auto e : erasures) corrupted[e] ^= 0x77;
  corrupted[14] ^= 0x01;
  corrupted[27] ^= 0xF0;
  const auto result = rs.decode(corrupted, erasures);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->data, data);
  EXPECT_EQ(result->corrected_errors, 2u);
  EXPECT_EQ(result->corrected_erasures, 4u);
}

TEST(ReedSolomonCode, MixedBeyondBoundFails) {
  // 3 errors + 4 erasures = 10 > 8: must not deliver the original.
  ReedSolomon rs(30, 8);
  RngStream rng(47);
  const auto data = random_bytes(30, rng);
  const auto code = rs.encode(data);
  auto corrupted = code;
  const std::vector<std::size_t> erasures{2, 9, 20, 33};
  for (const auto e : erasures) corrupted[e] ^= 0x77;
  corrupted[14] ^= 0x01;
  corrupted[27] ^= 0xF0;
  corrupted[5] ^= 0x3C;
  const auto result = rs.decode(corrupted, erasures);
  if (result) { EXPECT_NE(result->data, data); }
}

TEST(ReedSolomonCode, ShortenedBlocksWork) {
  // Tail blocks of a chunked payload use k < block size with the same
  // parity count.
  for (std::size_t k : {1u, 2u, 5u, 13u}) {
    ReedSolomon rs(k, 4);
    RngStream rng(53 + k);
    const auto data = random_bytes(k, rng);
    auto code = rs.encode(data);
    code[k / 2] ^= 0xA5;  // one error
    const auto result = rs.decode(code);
    ASSERT_TRUE(result.has_value()) << "k = " << k;
    EXPECT_EQ(result->data, data);
  }
}

TEST(ReedSolomonCode, DecodeRejectsWrongLength) {
  ReedSolomon rs(16, 8);
  const std::vector<std::uint8_t> short_word(10, 0);
  EXPECT_FALSE(rs.decode(short_word).has_value());
}

TEST(ReedSolomonCode, DecodeRejectsOutOfRangeErasure) {
  ReedSolomon rs(16, 8);
  const std::vector<std::uint8_t> word(24, 0);
  const std::vector<std::size_t> erasures{24};
  EXPECT_FALSE(rs.decode(word, erasures).has_value());
}

// Property sweep: every (k, parity) geometry corrects exactly t errors.
class RsGeometry : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RsGeometry, CorrectsExactlyTErrors) {
  const auto [k, parity] = GetParam();
  ReedSolomon rs(k, parity);
  RngStream rng(59 + k * 31 + parity);
  const auto data = random_bytes(k, rng);
  auto code = rs.encode(data);
  std::vector<std::size_t> positions(code.size());
  std::iota(positions.begin(), positions.end(), 0u);
  std::shuffle(positions.begin(), positions.end(), rng.engine());
  for (std::size_t e = 0; e < rs.t(); ++e) {
    std::uint8_t flip = 0;
    while (flip == 0) flip = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    code[positions[e]] ^= flip;
  }
  const auto result = rs.decode(code);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->data, data);
  EXPECT_EQ(result->corrected_errors, rs.t());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RsGeometry,
    ::testing::Combine(::testing::Values(std::size_t{4}, std::size_t{16}, std::size_t{64},
                                         std::size_t{223}),
                       ::testing::Values(std::size_t{2}, std::size_t{8}, std::size_t{16},
                                         std::size_t{32})),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- RS link ----------

oci::link::OpticalLinkConfig rs_link_config() {
  oci::link::OpticalLinkConfig c;
  c.design = oci::link::TdcDesign{64, 4, oci::util::Time::picoseconds(52.0)};
  c.bits_per_symbol = 8;
  c.channel_transmittance = 0.8;
  c.led.peak_power = oci::util::Power::microwatts(50.0);
  c.spad.jitter_sigma = oci::util::Time::zero();
  c.spad.dcr_at_ref = oci::util::Frequency::hertz(0.0);
  c.spad.afterpulse_probability = 0.0;
  c.calibration_samples = 50000;
  return c;
}

TEST(RsLink, CleanChannelRoundTrip) {
  RngStream rng(61);
  const oci::link::OpticalLink link(rs_link_config(), rng);
  const oci::link::RsLink rs(link);
  RngStream tx(67);
  const std::vector<std::uint8_t> payload{'r', 's', '-', 'l', 'i', 'n', 'k', 0, 255};
  const auto r = rs.transfer(payload, tx);
  ASSERT_TRUE(r.payload.has_value());
  EXPECT_EQ(*r.payload, payload);
  EXPECT_EQ(r.corrected_errors, 0u);
  EXPECT_EQ(r.corrected_erasures, 0u);
}

TEST(RsLink, RejectsBadGeometry) {
  RngStream rng(71);
  const oci::link::OpticalLink link(rs_link_config(), rng);
  oci::link::RsLinkConfig bad;
  bad.parity_bytes = 3;  // odd
  EXPECT_THROW(oci::link::RsLink(link, bad), std::invalid_argument);
}

TEST(RsLink, CodedBytesAccountsForBlocksAndCrc) {
  RngStream rng(73);
  const oci::link::OpticalLink link(rs_link_config(), rng);
  oci::link::RsLinkConfig cfg;
  cfg.block_data_bytes = 8;
  cfg.parity_bytes = 4;
  const oci::link::RsLink rs(link, cfg);
  // 15 payload + 1 CRC = 16 = two full blocks -> + 2*4 parity.
  EXPECT_EQ(rs.coded_bytes_for(15), 24u);
  // 16 payload + 1 CRC = 17 -> 2 full + 1-byte tail -> + 3*4 parity.
  EXPECT_EQ(rs.coded_bytes_for(16), 29u);
}

TEST(RsLink, CorrectsErasuresFromWeakPulses) {
  // Starve the link so a sizeable fraction of windows see no photon:
  // those erasures are KNOWN positions and RS fills them in. Slots are
  // widened (6 bits -> 832 ps) so the first-photon timing spread of a
  // dim pulse stays inside the slot and erasures are the ONLY
  // impairment.
  auto cfg = rs_link_config();
  cfg.bits_per_symbol = 6;
  // ~3.4 mean detected photons/pulse -> ~3% erasure probability.
  cfg.led.peak_power = oci::util::Power::nanowatts(40.0);
  cfg.channel_transmittance = 0.5;
  RngStream rng(79);
  const oci::link::OpticalLink link(cfg, rng);

  oci::link::RsLinkConfig rs_cfg;
  rs_cfg.block_data_bytes = 16;
  rs_cfg.parity_bytes = 8;
  const oci::link::RsLink rs(link, rs_cfg);

  RngStream tx(83);
  const std::vector<std::uint8_t> payload(24, 0xAB);
  std::size_t delivered = 0, erasure_fixes = 0;
  const int transfers = 40;
  for (int i = 0; i < transfers; ++i) {
    const auto r = rs.transfer(payload, tx);
    if (r.payload && *r.payload == payload) {
      ++delivered;
      erasure_fixes += r.corrected_erasures;
    }
  }
  EXPECT_GT(delivered, transfers * 3 / 5);
  EXPECT_GT(erasure_fixes, 0u);
}

TEST(RsLink, NeverDeliversCorruptPayload) {
  auto cfg = rs_link_config();
  cfg.spad.jitter_sigma = oci::util::Time::picoseconds(500.0);  // catastrophic
  RngStream rng(89);
  const oci::link::OpticalLink link(cfg, rng);
  const oci::link::RsLink rs(link);
  RngStream tx(97);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 30; ++i) {
    const auto r = rs.transfer(payload, tx);
    if (r.payload) { EXPECT_EQ(*r.payload, payload); }
  }
}
