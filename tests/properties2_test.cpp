// Property-style sweeps over the extension modules: Reed-Solomon
// capability surface, WDM crosstalk-matrix invariants, network packet
// conservation under every MAC, and clock-sync loop boundedness.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <tuple>

#include "oci/bus/clock_sync.hpp"
#include "oci/modulation/reed_solomon.hpp"
#include "oci/net/stack_network.hpp"
#include "oci/photonics/wdm.hpp"
#include "oci/util/random.hpp"

using namespace oci;
using modulation::ReedSolomon;
using util::RngStream;
using util::Time;

// ---------- RS capability surface ----------

// For every parity p and every split 2e + f <= p, a random pattern of e
// errors and f erasures must decode to the original data.
class RsCapability : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsCapability, EveryMixWithinTheBoundDecodes) {
  const std::size_t parity = GetParam();
  const std::size_t k = 30;
  ReedSolomon rs(k, parity);
  RngStream rng(401 + parity);

  for (std::size_t errors = 0; 2 * errors <= parity; ++errors) {
    const std::size_t erasures = parity - 2 * errors;
    std::vector<std::uint8_t> data(k);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    auto code = rs.encode(data);

    std::vector<std::size_t> positions(code.size());
    std::iota(positions.begin(), positions.end(), 0u);
    std::shuffle(positions.begin(), positions.end(), rng.engine());

    std::vector<std::size_t> erased(positions.begin(),
                                    positions.begin() + static_cast<std::ptrdiff_t>(erasures));
    for (const auto pos : erased) code[pos] = static_cast<std::uint8_t>(~code[pos]);
    for (std::size_t e = 0; e < errors; ++e) {
      std::uint8_t flip = 0;
      while (flip == 0) flip = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      code[positions[erasures + e]] ^= flip;
    }

    const auto result = rs.decode(code, erased);
    ASSERT_TRUE(result.has_value()) << "parity " << parity << " errors " << errors;
    EXPECT_EQ(result->data, data) << "parity " << parity << " errors " << errors;
  }
}

INSTANTIATE_TEST_SUITE_P(Parity, RsCapability,
                         ::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{8},
                                           std::size_t{12}, std::size_t{16},
                                           std::size_t{32}),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

// Whatever the decoder returns must re-encode to itself: the output is
// always a valid codeword, even when the input corruption exceeded the
// design bound (fuzz over heavy corruption).
TEST(RsFuzz, DecodedDataAlwaysReencodesConsistently) {
  ReedSolomon rs(20, 8);
  RngStream rng(409);
  int successes = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> data(20);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    auto code = rs.encode(data);
    const auto corruptions = static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t c = 0; c < corruptions; ++c) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(code.size()) - 1));
      code[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto result = rs.decode(code);
    if (!result) continue;
    ++successes;
    // Re-encoding the delivered data must reproduce a codeword that
    // decodes cleanly to the same data (self-consistency).
    const auto reencoded = rs.encode(result->data);
    const auto second = rs.decode(reencoded);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->data, result->data);
    EXPECT_EQ(second->corrected_errors, 0u);
  }
  EXPECT_GT(successes, 50);  // the light-corruption trials must decode
}

// ---------- WDM matrix invariants ----------

class WdmMatrix : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(WdmMatrix, RowInvariants) {
  const auto [channels, isolation_db] = GetParam();
  photonics::WdmGrid grid;
  grid.channels = channels;
  photonics::WdmFilter filter;
  filter.adjacent_isolation_db = isolation_db;
  const auto m = photonics::crosstalk_matrix(grid, filter);

  for (std::size_t i = 0; i < channels; ++i) {
    for (std::size_t j = 0; j < channels; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
      if (i != j) {
        // Off-diagonal leakage is strictly below the passband and
        // monotonically non-increasing with grid distance.
        EXPECT_LT(m[i][j], m[i][i]);
      }
    }
    for (std::size_t j = 2; i + j < channels; ++j) {
      EXPECT_LE(m[i][i + j], m[i][i + j - 1]);
    }
  }
  // Tighter isolation can only reduce the worst aggregate ratio.
  photonics::WdmFilter tighter = filter;
  tighter.adjacent_isolation_db = isolation_db + 10.0;
  tighter.isolation_floor_db = filter.isolation_floor_db + 10.0;
  EXPECT_LE(photonics::worst_crosstalk_ratio(photonics::crosstalk_matrix(grid, tighter)),
            photonics::worst_crosstalk_ratio(m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WdmMatrix,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{9}),
                       ::testing::Values(15.0, 25.0, 35.0)),
    [](const auto& info) {
      return "ch" + std::to_string(std::get<0>(info.param)) + "_iso" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------- network conservation under every MAC ----------

enum class MacKind { kTdma, kToken, kTokenPass, kAloha };

class NetConservation : public ::testing::TestWithParam<std::tuple<MacKind, double>> {};

std::unique_ptr<net::MacPolicy> build_mac(MacKind kind, std::size_t dies) {
  switch (kind) {
    case MacKind::kTdma:
      return std::make_unique<net::TdmaMac>(bus::TdmaSchedule::equal(dies));
    case MacKind::kToken:
      return std::make_unique<net::TokenMac>(dies, 0);
    case MacKind::kTokenPass:
      return std::make_unique<net::TokenMac>(dies, 2);
    case MacKind::kAloha:
      return std::make_unique<net::AlohaMac>(1.0 / static_cast<double>(dies));
  }
  return nullptr;
}

TEST_P(NetConservation, OfferedEqualsAccountedPlusBacklog) {
  const auto [kind, load] = GetParam();
  const std::size_t dies = 5;
  net::StackNetworkConfig cfg;
  cfg.dies = dies;
  cfg.traffic.resize(dies);
  for (auto& t : cfg.traffic) {
    t.packets_per_slot = load / static_cast<double>(dies);
    t.uniform_destinations = true;
  }
  cfg.delivery_probability = 0.85;
  cfg.max_attempts = 3;
  cfg.queue_capacity = 64;

  net::StackNetwork netw(cfg, build_mac(kind, dies));
  RngStream rng(419 + static_cast<std::uint64_t>(load * 10));
  const auto r = netw.run(15000, rng);

  std::uint64_t accounted = 0;
  for (const auto& d : r.per_die) accounted += d.delivered + d.queue_drops + d.retry_drops;
  EXPECT_EQ(r.total_offered(), accounted + netw.backlog());
  // Collisions only occur under random access.
  if (kind != MacKind::kAloha) { EXPECT_EQ(r.collision_slots, 0u); }
  // Carried load can never exceed one packet per slot.
  EXPECT_LE(r.carried_load(), 1.0);
}

std::string mac_case_name(const ::testing::TestParamInfo<std::tuple<MacKind, double>>& info) {
  static constexpr const char* kNames[] = {"tdma", "token", "tokenpass", "aloha"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) + "_load" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
}

INSTANTIATE_TEST_SUITE_P(
    Macs, NetConservation,
    ::testing::Combine(::testing::Values(MacKind::kTdma, MacKind::kToken,
                                         MacKind::kTokenPass, MacKind::kAloha),
                       ::testing::Values(0.2, 0.8, 1.5)),
    mac_case_name);

// ---------- clock-sync boundedness ----------

class ClockSyncSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockSyncSweep, DisciplinedErrorStaysBoundedForRandomOscillators) {
  RngStream param_rng(431 + GetParam());
  bus::LocalClockParams c;
  c.frequency_error_ppm = param_rng.uniform(-100.0, 100.0);
  c.cycle_jitter_rms = Time::picoseconds(param_rng.uniform(0.0, 5.0));
  bus::SyncLoopParams l;
  l.sync_interval_cycles = static_cast<std::uint64_t>(param_rng.uniform_int(8, 512));
  const bus::DisciplinedClock clk(c, l);
  RngStream rng(433 + GetParam());
  const auto r = clk.run(100000, rng, 10000);
  // Whatever the oscillator, the loop holds the error under one 200 MHz
  // cycle (5 ns) -- far below the unbounded free-running drift.
  EXPECT_LT(r.max_abs_phase_error.nanoseconds(), 5.0)
      << "ppm " << c.frequency_error_ppm << " interval " << l.sync_interval_cycles;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockSyncSweep, ::testing::Range<std::uint64_t>(0, 10),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });
