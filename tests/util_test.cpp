// Unit tests for oci::util -- units, RNG streams, statistics, tables.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <sstream>

#include "oci/util/math.hpp"
#include "oci/util/random.hpp"
#include "oci/util/samplers.hpp"
#include "oci/util/statistics.hpp"
#include "oci/util/table.hpp"
#include "oci/util/units.hpp"

namespace {

using namespace oci::util;

// ---------- units ----------

TEST(Units, TimeFactoriesRoundTrip) {
  EXPECT_DOUBLE_EQ(Time::nanoseconds(5.0).seconds(), 5e-9);
  EXPECT_DOUBLE_EQ(Time::picoseconds(52.0).nanoseconds(), 0.052);
  EXPECT_DOUBLE_EQ(Time::microseconds(1.0).picoseconds(), 1e6);
  EXPECT_DOUBLE_EQ(Time::milliseconds(2.0).seconds(), 2e-3);
}

TEST(Units, TimeArithmetic) {
  const Time a = Time::nanoseconds(3.0);
  const Time b = Time::nanoseconds(2.0);
  EXPECT_DOUBLE_EQ((a + b).nanoseconds(), 5.0);
  EXPECT_DOUBLE_EQ((a - b).nanoseconds(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).nanoseconds(), 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0).nanoseconds(), 1.5);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, Time::nanoseconds(3.0));
}

TEST(Units, TimeCompoundAssignment) {
  Time t = Time::nanoseconds(1.0);
  t += Time::nanoseconds(2.0);
  EXPECT_DOUBLE_EQ(t.nanoseconds(), 3.0);
  t -= Time::nanoseconds(0.5);
  EXPECT_DOUBLE_EQ(t.nanoseconds(), 2.5);
  t *= 4.0;
  EXPECT_DOUBLE_EQ(t.nanoseconds(), 10.0);
}

TEST(Units, FrequencyPeriodInverse) {
  const Frequency f = Frequency::megahertz(200.0);
  EXPECT_DOUBLE_EQ(f.period().nanoseconds(), 5.0);
  EXPECT_DOUBLE_EQ(inverse(Time::nanoseconds(5.0)).megahertz(), 200.0);
}

TEST(Units, EnergyPowerTimeRelations) {
  const Power p = Power::milliwatts(2.0);
  const Time t = Time::nanoseconds(10.0);
  const Energy e = p * t;
  EXPECT_DOUBLE_EQ(e.picojoules(), 20.0);
  EXPECT_DOUBLE_EQ((e / t).milliwatts(), 2.0);
  EXPECT_DOUBLE_EQ((e / p).nanoseconds(), 10.0);
}

TEST(Units, SwitchingEnergyCV2) {
  const Energy e = switching_energy(Capacitance::picofarads(2.0), Voltage::volts(1.2));
  EXPECT_NEAR(e.picojoules(), 2.0 * 1.2 * 1.2, 1e-12);
}

TEST(Units, PhotonEnergyVisible) {
  // 450 nm photon: E = hc/lambda ~ 4.414e-19 J.
  const Energy e = photon_energy(Wavelength::nanometres(450.0));
  EXPECT_NEAR(e.joules(), 4.414e-19, 5e-22);
}

TEST(Units, PhotonCountScalesWithEnergy) {
  const Wavelength wl = Wavelength::nanometres(450.0);
  const double n1 = photon_count(Energy::femtojoules(15.0), wl);
  const double n2 = photon_count(Energy::femtojoules(30.0), wl);
  EXPECT_NEAR(n2 / n1, 2.0, 1e-12);
  EXPECT_GT(n1, 1.0e4);  // 15 fJ of blue light is tens of thousands of photons
}

TEST(Units, TemperatureCelsiusKelvin) {
  EXPECT_DOUBLE_EQ(Temperature::celsius(20.0).kelvin(), 293.15);
  EXPECT_NEAR(Temperature::kelvin(300.0).celsius(), 26.85, 1e-9);
}

TEST(Units, BitRateConversions) {
  EXPECT_DOUBLE_EQ(BitRate::gigabits_per_second(2.5).bits_per_second(), 2.5e9);
  EXPECT_DOUBLE_EQ(bits_over(10.0, Time::nanoseconds(5.0)).gigabits_per_second(), 2.0);
}

TEST(Units, WavelengthDistinctFromLength) {
  static_assert(!std::is_same_v<Wavelength, Length>);
  EXPECT_DOUBLE_EQ(Wavelength::nanometres(850.0).micrometres(), 0.85);
}

// ---------- math ----------

TEST(MathHelpers, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(96));
}

TEST(MathHelpers, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(96), 6u);  // floor(log2 96)
  EXPECT_EQ(ilog2(128), 7u);
  EXPECT_THROW((void)ilog2(0), std::invalid_argument);
}

TEST(MathHelpers, BitsFor) {
  EXPECT_EQ(bits_for(1), 0u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
}

TEST(MathHelpers, GrayCodeRoundTrip) {
  for (std::uint64_t v = 0; v < 1024; ++v) {
    EXPECT_EQ(from_gray(to_gray(v)), v);
  }
}

TEST(MathHelpers, GrayAdjacencyProperty) {
  // Consecutive values differ in exactly one bit of their Gray code.
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::uint64_t diff = to_gray(v) ^ to_gray(v + 1);
    EXPECT_EQ(std::popcount(diff), 1) << "at v=" << v;
  }
}

// ---------- random ----------

TEST(Random, Deterministic) {
  RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Random, LabelledStreamsDiffer) {
  RngStream a(42, "spad"), b(42, "tdc");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Random, DeriveSeedDependsOnLabel) {
  EXPECT_NE(derive_seed(1, "x"), derive_seed(1, "y"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(2, "x"));
  EXPECT_EQ(derive_seed(7, "abc"), derive_seed(7, "abc"));
}

TEST(Random, UniformRange) {
  RngStream rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Random, UniformIntInclusive) {
  RngStream rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, NormalMoments) {
  RngStream rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Random, ExponentialMean) {
  RngStream rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential_mean(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Random, PoissonMean) {
  RngStream rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(rng.poisson(6.5)));
  EXPECT_NEAR(s.mean(), 6.5, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Random, BernoulliEdges) {
  RngStream rng(19);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Random, TimeDraws) {
  RngStream rng(23);
  for (int i = 0; i < 1000; ++i) {
    const Time t = rng.uniform_time(Time::nanoseconds(5.0));
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_LT(t.nanoseconds(), 5.0);
  }
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(rng.exponential_time(Time::nanoseconds(50.0)).nanoseconds());
  }
  EXPECT_NEAR(s.mean(), 50.0, 1.5);
}

TEST(Random, ForkProducesIndependentStream) {
  RngStream a(42);
  RngStream child = a.fork("child");
  RngStream parent_copy(42);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform() == parent_copy.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------- statistics ----------

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, RunningEmpty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, MergeMatchesBulk) {
  RngStream rng(29);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 10u);  // out-of-range not in total
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.1);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Stats, HistogramRejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Stats, WilsonIntervalBrackets) {
  const auto e = wilson_interval(10, 1000);
  EXPECT_NEAR(e.p, 0.01, 1e-12);
  EXPECT_LT(e.lo, 0.01);
  EXPECT_GT(e.hi, 0.01);
  EXPECT_GE(e.lo, 0.0);
  EXPECT_LE(e.hi, 1.0);
}

TEST(Stats, WilsonIntervalZeroTrials) {
  const auto e = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(e.p, 0.0);
  EXPECT_DOUBLE_EQ(e.lo, 0.0);
  EXPECT_DOUBLE_EQ(e.hi, 0.0);
}

TEST(Stats, WilsonZeroSuccesses) {
  const auto e = wilson_interval(0, 10000);
  EXPECT_DOUBLE_EQ(e.p, 0.0);
  EXPECT_DOUBLE_EQ(e.lo, 0.0);
  EXPECT_GT(e.hi, 0.0);  // upper bound stays informative
  EXPECT_LT(e.hi, 1e-3);
}

TEST(Stats, QuantileSorted) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
  EXPECT_THROW((void)quantile_sorted(std::span<const double>{}, 0.5), std::invalid_argument);
}

// ---------- table ----------

TEST(Table, AlignedOutputContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.new_row().add_cell("alpha").add_cell(1.5, 2);
  t.new_row().add_cell("beta").add_cell(std::int64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.new_row().add_cell("x,y").add_sci(1234.5);
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a,b"), std::string::npos);
  EXPECT_NE(s.find("x;y"), std::string::npos);  // comma sanitised
}

TEST(Table, MisuseThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_cell("no row yet"), std::logic_error);
  t.new_row().add_cell("ok");
  EXPECT_THROW(t.add_cell("row full"), std::logic_error);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, SiFormat) {
  EXPECT_EQ(si_format(2.5e9, "bps", 1), "2.5 Gbps");
  EXPECT_EQ(si_format(5.0e-9, "s", 1), "5.0 ns");
  EXPECT_EQ(si_format(0.0, "W", 1), "0 W");
  EXPECT_EQ(si_format(-3.0e6, "Hz", 0), "-3 MHz");
}

// ---------- samplers ----------

TEST(Samplers, PoissonSamplerMatchesMomentsAcrossMeans) {
  for (const double mean : {0.3, 4.0, 60.0, 500.0}) {
    const PoissonSampler sampler(mean);
    EXPECT_TRUE(sampler.table_backed());
    RngStream rng(4242 + static_cast<std::uint64_t>(mean));
    RunningStats s;
    const int n = 40000;
    for (int i = 0; i < n; ++i) s.add(static_cast<double>(sampler.sample(rng)));
    // Poisson: mean == variance; tolerate ~5 sigma of sampling noise.
    const double tol = 5.0 * std::sqrt(mean / n);
    EXPECT_NEAR(s.mean(), mean, tol + 5e-2) << "mean " << mean;
    EXPECT_NEAR(s.variance(), mean, 6.0 * mean / std::sqrt(static_cast<double>(n)) + 0.1)
        << "mean " << mean;
  }
}

TEST(Samplers, PoissonSamplerEdgeCases) {
  const PoissonSampler zero;
  RngStream rng(77);
  EXPECT_EQ(zero.sample(rng), 0);
  EXPECT_FALSE(zero.table_backed());

  // Above the table limit: falls back to the generic draw but stays a
  // valid Poisson (spot-check the mean).
  const PoissonSampler big(5000.0);
  EXPECT_FALSE(big.table_backed());
  RunningStats s;
  for (int i = 0; i < 2000; ++i) s.add(static_cast<double>(big.sample(rng)));
  EXPECT_NEAR(s.mean(), 5000.0, 25.0);

  EXPECT_THROW(PoissonSampler(-1.0), std::invalid_argument);
}

TEST(Samplers, AscendingUniformStreamIsSortedAndMatchesSortedUniforms) {
  // The streamed order statistics must be ascending, in [0,1), and
  // distributed like sorting n uniforms: compare the mean of U_(1) of
  // n=8 against its analytic 1/(n+1).
  RngStream rng(991);
  RunningStats first_stat;
  for (int trial = 0; trial < 20000; ++trial) {
    AscendingUniformStream order(8);
    double prev = -1.0;
    const double first = order.next(rng);
    first_stat.add(first);
    prev = first;
    for (int k = 1; k < 8; ++k) {
      const double u = order.next(rng);
      ASSERT_GE(u, prev);
      ASSERT_LT(u, 1.0);
      prev = u;
    }
    EXPECT_EQ(order.remaining(), 0);
  }
  EXPECT_NEAR(first_stat.mean(), 1.0 / 9.0, 0.005);
}

TEST(Math, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-7);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-4);
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

}  // namespace
