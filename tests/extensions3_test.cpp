// Tests for the VCD writer and the cycle-accurate RTL TDC model,
// including behavioural-vs-RTL equivalence.
#include <gtest/gtest.h>

#include <sstream>

#include "oci/sim/vcd.hpp"
#include "oci/tdc/rtl_model.hpp"
#include "oci/tdc/tdc.hpp"

namespace {

using namespace oci;
using util::RngStream;
using util::Time;

// ---------- VCD ----------

TEST(Vcd, IdentifiersAreUniqueAndPrintable) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < 500; ++i) {
    const std::string id = sim::vcd_identifier(i);
    EXPECT_FALSE(id.empty());
    for (char c : id) {
      EXPECT_GE(c, '!');
      EXPECT_LE(c, '~');
    }
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id at " << i;
  }
}

TEST(Vcd, DocumentStructure) {
  sim::Trace trace;
  trace.record(Time::nanoseconds(1.0), "clk", 1.0);
  trace.record(Time::nanoseconds(2.0), "clk", 0.0);
  trace.record(Time::nanoseconds(2.0), "data", 42.0);
  std::ostringstream os;
  sim::write_vcd(os, trace);
  const std::string s = os.str();
  EXPECT_NE(s.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(s.find("$var real 64 ! clk $end"), std::string::npos);
  EXPECT_NE(s.find("$var real 64 \" data $end"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(s.find("#1000"), std::string::npos);  // 1 ns at 1 ps timescale
  EXPECT_NE(s.find("#2000"), std::string::npos);
  EXPECT_NE(s.find("r42 "), std::string::npos);
}

TEST(Vcd, DeterministicOutput) {
  sim::Trace trace;
  trace.record(Time::nanoseconds(1.0), "a", 1.0);
  std::ostringstream a, b;
  sim::write_vcd(a, trace);
  sim::write_vcd(b, trace);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Vcd, EmptyTraceStillValid) {
  sim::Trace trace;
  std::ostringstream os;
  sim::write_vcd(os, trace);
  EXPECT_NE(os.str().find("$enddefinitions"), std::string::npos);
}

TEST(Vcd, CustomTimescaleQuantises) {
  sim::Trace trace;
  trace.record(Time::nanoseconds(1.5), "x", 3.0);
  sim::VcdOptions opt;
  opt.timescale = Time::nanoseconds(1.0);
  std::ostringstream os;
  sim::write_vcd(os, trace, opt);
  EXPECT_NE(os.str().find("$timescale 1000ps"), std::string::npos);
  EXPECT_NE(os.str().find("#2"), std::string::npos);  // 1.5 ns rounds to tick 2
}

// ---------- RTL TDC ----------

tdc::DelayLine ideal_line(std::size_t n = 96) {
  tdc::DelayLineParams p;
  p.elements = n;
  p.nominal_delay = Time::picoseconds(52.0);
  p.mismatch_sigma = 0.0;
  p.metastability_window = Time::zero();
  RngStream rng(31337);
  return tdc::DelayLine(p, rng);
}

TEST(RtlTdc, PipelineSequence) {
  tdc::RtlTdc rtl(ideal_line(), 3, Time::nanoseconds(4.992));
  RngStream rng(1);
  rtl.open_window();
  EXPECT_FALSE(rtl.busy());

  // Hit mid-way through cycle 1's period.
  ASSERT_TRUE(rtl.hit(Time::nanoseconds(7.0), rng));
  EXPECT_TRUE(rtl.busy());
  // A second hit while busy is rejected (single conversion per window).
  EXPECT_FALSE(rtl.hit(Time::nanoseconds(8.0), rng));

  std::optional<tdc::RtlConversion> conv;
  int ticks = 0;
  while (!conv && ticks < 10) {
    conv = rtl.tick();
    ++ticks;
  }
  ASSERT_TRUE(conv.has_value());
  EXPECT_EQ(conv->coarse, 2u);  // latched on edge 2 (t = 9.98 ns)
  // After the reset cycle the converter is armed again.
  (void)rtl.tick();
  EXPECT_FALSE(rtl.busy());
}

TEST(RtlTdc, MatchesBehaviouralModel) {
  // Drive both models with the same set of TOAs; codes must agree.
  const Time period = Time::nanoseconds(4.992);
  tdc::TdcConfig cfg;
  cfg.coarse_bits = 3;
  cfg.clock_period = period;
  cfg.decode = tdc::ThermometerDecode::kOnesCount;
  const tdc::Tdc behavioural(ideal_line(), cfg);

  RngStream rng(2);
  for (double frac : {0.01, 0.1, 0.37, 0.5, 0.77, 0.93, 0.999}) {
    const Time toa = Time::seconds(behavioural.toa_window().seconds() * frac);
    const auto expected = behavioural.convert_ideal(toa);

    tdc::RtlTdc rtl(ideal_line(), 3, period, tdc::ThermometerDecode::kOnesCount);
    rtl.open_window();
    ASSERT_TRUE(rtl.hit(toa, rng)) << "frac " << frac;
    std::optional<tdc::RtlConversion> conv;
    for (int t = 0; t < 20 && !conv; ++t) conv = rtl.tick();
    ASSERT_TRUE(conv.has_value()) << "frac " << frac;
    EXPECT_EQ(conv->code, expected.code) << "frac " << frac;
    EXPECT_EQ(conv->coarse, expected.coarse) << "frac " << frac;
    EXPECT_EQ(conv->fine, expected.fine) << "frac " << frac;
  }
}

TEST(RtlTdc, ConversionLatencyBounded) {
  // The result must retire within latch + encode cycles of the hit's
  // latch edge, and the reset adds exactly one more cycle of busy.
  tdc::RtlTdc rtl(ideal_line(), 2, Time::nanoseconds(4.992));
  RngStream rng(3);
  rtl.open_window();
  ASSERT_TRUE(rtl.hit(Time::nanoseconds(2.0), rng));
  std::optional<tdc::RtlConversion> conv;
  std::uint64_t ticks = 0;
  while (!conv) {
    conv = rtl.tick();
    ++ticks;
    ASSERT_LE(ticks, 5u);
  }
  EXPECT_LE(conv->done_cycle, conv->coarse + 2u);
}

TEST(RtlTdc, HitInPastThrows) {
  tdc::RtlTdc rtl(ideal_line(), 2, Time::nanoseconds(4.992));
  RngStream rng(4);
  for (int i = 0; i < 4; ++i) (void)rtl.tick();
  EXPECT_THROW(rtl.hit(Time::nanoseconds(1.0), rng), std::invalid_argument);
}

TEST(RtlTdc, RejectsUncoveringChain) {
  EXPECT_THROW(tdc::RtlTdc(ideal_line(8), 2, Time::nanoseconds(4.992)),
               std::invalid_argument);
}

TEST(RtlTdc, BackToBackWindows) {
  // Two conversions in consecutive windows, checking re-arm.
  const Time period = Time::nanoseconds(4.992);
  tdc::RtlTdc rtl(ideal_line(), 2, period);
  RngStream rng(5);

  rtl.open_window();
  ASSERT_TRUE(rtl.hit(Time::nanoseconds(3.0), rng));
  std::optional<tdc::RtlConversion> first;
  while (!first) first = rtl.tick();
  // Drain reset.
  while (rtl.busy()) (void)rtl.tick();

  rtl.open_window();
  const double now = static_cast<double>(rtl.cycle()) * period.seconds();
  ASSERT_TRUE(rtl.hit(Time::seconds(now + 2e-9), rng));
  std::optional<tdc::RtlConversion> second;
  int guard = 0;
  while (!second && guard++ < 20) second = rtl.tick();
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->done_cycle, first->done_cycle);
}

}  // namespace
