// Allocation-count guard for the sweep hot loops.
//
// The whole point of the LinkEngine (and its multi-source
// generalisation) is that a symbol window costs a handful of RNG draws
// and ZERO heap traffic, so BatchRunner sweeps scale with arithmetic,
// not with the allocator. This binary replaces global operator
// new/delete with counting wrappers and pins that property for the
// three hot loops sweeps actually run:
//
//   * the single-source run_symbols driver (abl_scaling, abl_fec),
//   * the multi-source interference window loop (WdmLink / bus
//     contention inner loop),
//   * the LinkEngine-coupled NoC delivery model (StackNetwork sweeps).
//
// After a warm-up pass (which may size scratch buffers), the loops
// must perform no allocation at all. Under ASan/UBSan the sanitizer
// owns the allocator, so the counting assertions are skipped there
// (the loops still run, keeping the binary exercised).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "oci/link/link_engine.hpp"
#include "oci/link/symbol_delivery.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define OCI_ALLOC_GUARD_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OCI_ALLOC_GUARD_ACTIVE 0
#else
#define OCI_ALLOC_GUARD_ACTIVE 1
#endif
#else
#define OCI_ALLOC_GUARD_ACTIVE 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if OCI_ALLOC_GUARD_ACTIVE

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = size == 0 ? a : (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // OCI_ALLOC_GUARD_ACTIVE

namespace {

using namespace oci;
using link::EngineScratch;
using link::LinkEngine;
using link::LinkRunStats;
using link::OpticalLink;
using link::OpticalLinkConfig;
using link::SourcePulse;
using util::Frequency;
using util::Power;
using util::RngStream;
using util::Time;

OpticalLinkConfig guard_config() {
  OpticalLinkConfig c;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 5;
  c.channel_transmittance = 0.5;
  c.led.peak_power = Power::microwatts(50.0);
  c.spad.dcr_at_ref = Frequency::kilohertz(5.0);
  c.spad.afterpulse_probability = 0.01;
  c.background_rate = Frequency::megahertz(1.0);
  c.calibrate = false;
  return c;
}

void expect_no_allocations(std::uint64_t before, std::uint64_t after, const char* what) {
#if OCI_ALLOC_GUARD_ACTIVE
  EXPECT_EQ(after - before, 0u) << what << " allocated " << (after - before)
                                << " times in the hot loop";
#else
  (void)before;
  (void)after;
  GTEST_SKIP() << "allocation counting disabled under sanitizers (" << what << ")";
#endif
}

TEST(AllocGuard, SingleSourceSymbolLoopIsAllocationFree) {
  RngStream process(1201);
  const OpticalLink link(guard_config(), process);
  const LinkEngine engine(link);
  RngStream tx(1203);

  (void)engine.measure(64, tx);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const LinkRunStats stats = engine.measure(1024, tx);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(stats.symbols_sent, 1024u);
  expect_no_allocations(before, after, "single-source run_symbols");
}

TEST(AllocGuard, BatchedWindowKernelIsAllocationFree) {
  RngStream process(1231);
  const OpticalLink link(guard_config(), process);
  const LinkEngine engine(link);
  const util::BatchRngStream lanes(0xA110Cull, "alloc-guard");

  // Direct batched-kernel loop: the shape ScenarioRunner's chunked
  // map drives. One scratch + one staging vector, reused per batch.
  link::EngineBatchScratch scratch;
  std::vector<link::WindowResult> windows(LinkEngine::kEngineBatch);
  const auto stage = [&](std::uint64_t first_lane) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      windows[i] = link::WindowResult{};
      windows[i].pulse_start_s =
          link.ppm().encode((first_lane + i) % 32).seconds();
    }
  };

  stage(0);
  engine.simulate_windows(windows, lanes, scratch);  // warm-up sizes the SoA

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::uint64_t fired = 0;
  for (std::uint64_t batch = 0; batch < 16; ++batch) {
    stage(batch * windows.size());
    engine.simulate_windows(windows, lanes, scratch, batch * windows.size());
    for (const link::WindowResult& w : windows) fired += w.fired ? 1 : 0;
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_GT(fired, 0u);
  expect_no_allocations(before, after, "simulate_windows batch loop");
}

TEST(AllocGuard, MultiSourceInterferenceLoopIsAllocationFree) {
  RngStream process(1213);
  const OpticalLink link(guard_config(), process);
  const LinkEngine engine(link);
  RngStream tx(1217);

  // The WDM / bus-contention inner loop shape: a fixed-size aggressor
  // set rebuilt per window, one scratch reused throughout.
  EngineScratch scratch;
  std::array<SourcePulse, 3> aggressors{};
  LinkRunStats stats;
  Time t = Time::zero();
  Time dead_until = Time::zero();
  const Time window = link.toa_window();

  const auto run_windows = [&](int count) {
    for (int i = 0; i < count; ++i) {
      for (std::size_t k = 0; k < aggressors.size(); ++k) {
        aggressors[k] = SourcePulse{&link.led(), 6.0,
                                    t + window * (0.2 + 0.25 * static_cast<double>(k))};
      }
      (void)engine.transmit_symbol(static_cast<std::uint64_t>(i % 32), t, aggressors,
                                   dead_until, stats, tx, scratch);
      t += link.symbol_period();
    }
  };

  run_windows(16);  // warm-up: sizes the scratch source states

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  run_windows(1024);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(stats.symbols_sent, 16u + 1024u);
  expect_no_allocations(before, after, "multi-source window loop");
}

TEST(AllocGuard, NocDeliveryModelLoopIsAllocationFree) {
  RngStream process(1223);
  const OpticalLink link(guard_config(), process);
  link::SymbolDeliveryModel phy(link);
  RngStream rng(1229);

  (void)phy.deliver(8, rng);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::uint64_t delivered = 0;
  for (int i = 0; i < 512; ++i) {
    delivered += phy.deliver(8, rng) ? 1 : 0;
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_GT(phy.cumulative().symbols_sent, 512u);
  expect_no_allocations(before, after, "NoC symbol-delivery loop");
}

}  // namespace
