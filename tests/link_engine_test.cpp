// LinkEngine regression suite.
//
// Two layers of protection around the zero-allocation hot path:
//  * GOLDEN, bit-for-bit -- OpticalLink's measure()/transmit() must
//    reproduce the exact counters of an explicit LinkEngine run at the
//    same seed: the facade and the engine ride the same batched driver.
//    (Per-lane bit-exactness of the batched path itself -- across ISA
//    kernels, batch sizes and thread counts -- is pinned separately in
//    engine_batch_test.)
//  * STATISTICAL -- the per-symbol mt19937 API, the batched
//    counter-RNG drivers, and the reference per-photon pipeline
//    (transmit_symbol_reference) consume RNG draws differently by
//    design, so cross-path agreement is asserted with two-proportion
//    z-tests on erasure/error/noise-capture rates across link
//    configurations.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/stat_assert.hpp"

#include "oci/link/link_engine.hpp"
#include "oci/link/optical_link.hpp"

namespace {

using namespace oci;
using link::LinkEngine;
using link::LinkRunStats;
using link::OpticalLink;
using link::OpticalLinkConfig;
using util::Frequency;
using util::Power;
using util::RngStream;
using util::Time;

OpticalLinkConfig base_config() {
  OpticalLinkConfig c;
  c.design = link::TdcDesign{64, 4, Time::picoseconds(52.0)};
  c.bits_per_symbol = 5;
  c.channel_transmittance = 0.5;
  c.led.peak_power = Power::microwatts(50.0);
  c.spad.dcr_at_ref = Frequency::hertz(100.0);
  c.spad.afterpulse_probability = 0.005;
  c.calibration_samples = 50000;
  return c;
}

OpticalLinkConfig dim_noisy_config() {
  OpticalLinkConfig c = base_config();
  c.led.peak_power = Power::nanowatts(300.0);  // photon-starved
  c.spad.dcr_at_ref = Frequency::kilohertz(200.0);
  c.background_rate = Frequency::megahertz(2.0);
  c.calibrate = false;
  return c;
}

OpticalLinkConfig passive_quench_config() {
  OpticalLinkConfig c = base_config();
  c.spad.quench = spad::QuenchMode::kPassive;
  c.spad.afterpulse_probability = 0.05;
  c.calibrate = false;
  return c;
}

void expect_identical(const LinkRunStats& a, const LinkRunStats& b) {
  EXPECT_EQ(a.symbols_sent, b.symbols_sent);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.erasures, b.erasures);
  EXPECT_EQ(a.noise_captures, b.noise_captures);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_DOUBLE_EQ(a.elapsed.seconds(), b.elapsed.seconds());
  EXPECT_DOUBLE_EQ(a.tx_energy.joules(), b.tx_energy.joules());
  EXPECT_DOUBLE_EQ(a.rx_energy.joules(), b.rx_energy.joules());
}

// ---------- golden: drivers agree bit-for-bit ----------

class EngineGolden : public ::testing::TestWithParam<int> {
 protected:
  OpticalLinkConfig config() const {
    switch (GetParam()) {
      case 0:
        return base_config();
      case 1:
        return dim_noisy_config();
      default:
        return passive_quench_config();
    }
  }
};

TEST_P(EngineGolden, MeasureMatchesExplicitEngineBitForBit) {
  RngStream process(811);
  const OpticalLink link(config(), process);

  RngStream tx_api(821);
  const LinkRunStats via_api = link.measure(1500, tx_api);

  RngStream tx_engine(821);
  const LinkEngine engine(link);
  const LinkRunStats via_engine = engine.measure(1500, tx_engine);

  expect_identical(via_api, via_engine);
}

TEST_P(EngineGolden, PerSymbolLoopMatchesBatchedRunStatistically) {
  // The batched drivers replaced the per-symbol mt19937 walk with
  // counter-RNG window lanes, so the two paths are equivalent in
  // distribution, not draw-for-draw: rates must agree statistically
  // and the deterministic accounting must agree exactly.
  RngStream process(823);
  const OpticalLink link(config(), process);
  constexpr std::uint64_t n = 4000;

  // Old-style driver: one transmit_symbol call per window.
  RngStream tx_loop(827);
  LinkRunStats loop_stats;
  Time t = Time::zero();
  Time dead_until = Time::zero();
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto symbol = static_cast<std::uint64_t>(
        tx_loop.uniform_int(0, static_cast<std::int64_t>(max_symbol)));
    (void)link.transmit_symbol(symbol, t, dead_until, loop_stats, tx_loop);
    t += link.symbol_period();
  }

  // Batched driver: one engine, whole batches.
  RngStream tx_batch(829);
  const LinkEngine engine(link);
  const LinkRunStats batch_stats = engine.measure(n, tx_batch);

  EXPECT_EQ(loop_stats.symbols_sent, batch_stats.symbols_sent);
  EXPECT_EQ(loop_stats.total_bits, batch_stats.total_bits);
  EXPECT_DOUBLE_EQ(loop_stats.elapsed.seconds(), batch_stats.elapsed.seconds());
  EXPECT_DOUBLE_EQ(loop_stats.tx_energy.joules(), batch_stats.tx_energy.joules());
  EXPECT_DOUBLE_EQ(loop_stats.rx_energy.joules(), batch_stats.rx_energy.joules());
  EXPECT_RATES_CONSISTENT(loop_stats.erasures, n, batch_stats.erasures, n, 1e-4);
  EXPECT_RATES_CONSISTENT(loop_stats.symbol_errors, n, batch_stats.symbol_errors, n,
                          1e-4);
  EXPECT_RATES_CONSISTENT(loop_stats.noise_captures, n, batch_stats.noise_captures, n,
                          1e-4);
  EXPECT_RATES_CONSISTENT(loop_stats.bit_errors, loop_stats.total_bits,
                          batch_stats.bit_errors, batch_stats.total_bits, 1e-4);
}

TEST_P(EngineGolden, TransmitMatchesRunSequenceBitForBit) {
  RngStream process(829);
  const OpticalLink link(config(), process);

  std::vector<std::uint64_t> symbols;
  RngStream pick(831);
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  for (int i = 0; i < 400; ++i) {
    symbols.push_back(static_cast<std::uint64_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(max_symbol))));
  }

  RngStream tx_a(837);
  const OpticalLink::RunResult run = link.transmit(symbols, tx_a);

  RngStream tx_b(837);
  const LinkEngine engine(link);
  std::vector<std::uint64_t> decoded;
  std::vector<bool> erased;
  const LinkRunStats stats = engine.run_sequence(
      symbols, tx_b, [&](std::size_t, const LinkEngine::SymbolOutcome& out) {
        decoded.push_back(out.decoded);
        erased.push_back(out.erased);
      });

  expect_identical(run.stats, stats);
  EXPECT_EQ(run.decoded, decoded);
  EXPECT_EQ(run.erased, erased);
}

INSTANTIATE_TEST_SUITE_P(Configs, EngineGolden, ::testing::Values(0, 1, 2));

// ---------- statistical: engine vs reference pipeline ----------

struct PathRates {
  LinkRunStats stats;
};

PathRates run_reference(const OpticalLink& link, std::uint64_t symbols, RngStream& rng) {
  PathRates out;
  Time t = Time::zero();
  Time dead_until = Time::zero();
  const std::uint64_t max_symbol = (std::uint64_t{1} << link.bits_per_symbol()) - 1;
  for (std::uint64_t i = 0; i < symbols; ++i) {
    const auto symbol = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_symbol)));
    (void)link.transmit_symbol_reference(symbol, t, dead_until, out.stats, rng, {});
    t += link.symbol_period();
  }
  return out;
}

class EngineVsReference : public ::testing::TestWithParam<int> {};

TEST_P(EngineVsReference, ErrorRatesConsistent) {
  OpticalLinkConfig cfg;
  std::uint64_t n = 4000;
  switch (GetParam()) {
    case 0:
      cfg = base_config();
      break;
    case 1:
      cfg = dim_noisy_config();
      break;
    case 2:
      cfg = passive_quench_config();
      break;
    default:  // jitter-dominated narrow slots
      cfg = base_config();
      cfg.bits_per_symbol = 8;
      cfg.spad.jitter_sigma = Time::picoseconds(150.0);
      break;
  }
  RngStream process(907);
  const OpticalLink link(cfg, process);

  RngStream tx_ref(911);
  const PathRates ref = run_reference(link, n, tx_ref);

  RngStream tx_eng(919);
  const LinkEngine engine(link);
  const LinkRunStats eng = engine.measure(n, tx_eng);

  EXPECT_EQ(ref.stats.symbols_sent, eng.symbols_sent);
  EXPECT_RATES_CONSISTENT(ref.stats.erasures, n, eng.erasures, n, 1e-4);
  EXPECT_RATES_CONSISTENT(ref.stats.symbol_errors, n, eng.symbol_errors, n, 1e-4);
  EXPECT_RATES_CONSISTENT(ref.stats.noise_captures, n, eng.noise_captures, n, 1e-4);
  EXPECT_RATES_CONSISTENT(ref.stats.bit_errors, ref.stats.total_bits, eng.bit_errors,
                          eng.total_bits, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Configs, EngineVsReference, ::testing::Values(0, 1, 2, 3));

// ---------- engine-specific behaviours ----------

TEST(LinkEngine, DeterministicAcrossIdenticalSeeds) {
  RngStream p1(941), p2(941);
  const OpticalLink a(base_config(), p1), b(base_config(), p2);
  RngStream t1(947), t2(947);
  expect_identical(LinkEngine(a).measure(500, t1), LinkEngine(b).measure(500, t2));
}

TEST(LinkEngine, DeadTimeCarriesAcrossSymbols) {
  // Paper-exact windows (no guard) on a bright link: a late pulse
  // followed by an early one must land in the SPAD's blind carry and
  // erase -- the engine must reproduce the reference inter-symbol
  // coupling, not treat windows independently.
  auto cfg = base_config();
  cfg.inter_symbol_guard = Time::zero();
  cfg.calibrate = false;
  RngStream process(953);
  const OpticalLink link(cfg, process);

  const LinkEngine engine(link);
  LinkRunStats stats;
  Time dead_until = Time::zero();
  // Symbol in the LAST slot then symbol in the FIRST slot: the second
  // pulse follows the first by far less than the 40 ns dead time.
  const std::uint64_t last_slot_symbol = link.ppm().symbol_for_slot(31);
  const std::uint64_t first_slot_symbol = link.ppm().symbol_for_slot(0);
  (void)engine.transmit_symbol(last_slot_symbol, Time::zero(), dead_until, stats,
                               process);
  const Time second_start = link.symbol_period();
  (void)engine.transmit_symbol(first_slot_symbol, second_start, dead_until, stats, process);
  EXPECT_EQ(stats.erasures, 1u);  // second window blind
  EXPECT_GT(dead_until, second_start);
}

TEST(LinkEngine, ProbePulseReturnsSignalHitOnBrightLink) {
  RngStream process(967);
  const OpticalLink link(base_config(), process);
  const LinkEngine engine(link);
  RngStream rng(971);
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    const auto first = engine.probe_pulse(Time::nanoseconds(10.0), rng);
    if (first) {
      ++hits;
      // First detection of a bright pulse sits near the pulse start
      // (within jitter + envelope width).
      EXPECT_NEAR(first->nanoseconds(), 10.0, 1.0);
    }
  }
  EXPECT_GT(hits, 95);  // detection probability ~ 1 on this budget
}

}  // namespace
